#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace a3cs {
namespace {

using util::ExecConfig;
using util::ThreadPool;

// ---------------------------------------------------------- ExecConfig ----

TEST(ExecConfig, DefaultIsSerial) {
  ExecConfig cfg;
  EXPECT_EQ(cfg.threads, 1);
  EXPECT_EQ(cfg.resolved_threads(), 1);
}

TEST(ExecConfig, ZeroResolvesToHardwareConcurrency) {
  ExecConfig cfg;
  cfg.threads = 0;
  EXPECT_GE(cfg.resolved_threads(), 1);
}

TEST(ExecConfig, EnvOverrideWins) {
  ::setenv("A3CS_THREADS", "3", 1);
  const ExecConfig cfg = ExecConfig{}.with_env_overrides();
  EXPECT_EQ(cfg.threads, 3);
  ::setenv("A3CS_THREADS", "auto", 1);
  EXPECT_EQ(ExecConfig{}.with_env_overrides().threads, 0);
  ::unsetenv("A3CS_THREADS");
  ExecConfig base;
  base.threads = 5;
  EXPECT_EQ(base.with_env_overrides().threads, 5);
}

// ---------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, SerialPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  EXPECT_EQ(pool.worker_count(), 0);
  // Serial regions run inline as one fn(begin, end) call.
  int calls = 0;
  pool.parallel_for(0, 100, 8, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 100);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(pool.regions_inline(), 1);
  EXPECT_EQ(pool.regions_parallel(), 0);
}

TEST(ThreadPool, ParallelPoolSpawnsThreadsMinusOneWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  EXPECT_EQ(pool.worker_count(), 3);
}

TEST(ThreadPool, EmptyRangeNeverInvokesFn) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, 0, 1, [&](std::int64_t, std::int64_t) { called = true; });
  pool.parallel_for(5, 3, 1, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(pool.tasks_executed(), 0);
}

TEST(ThreadPool, ShardsCoverRangeExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    for (std::int64_t grain : {1, 3, 16, 1000}) {
      const std::int64_t n = 97;
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.parallel_for(0, n, grain, [&](std::int64_t b, std::int64_t e) {
        if (threads > 1) {  // serial pools run one inline full-range call
          EXPECT_EQ(b % grain, 0) << "shard start not grain-aligned";
          EXPECT_LE(e - b, grain);
        }
        for (std::int64_t i = b; i < e; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
      for (std::int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i << " threads " << threads << " grain " << grain;
      }
    }
  }
}

TEST(ThreadPool, NonZeroBeginRespected) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(20);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(5, 17, 4, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (std::int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(),
              (i >= 5 && i < 17) ? 1 : 0)
        << i;
  }
}

TEST(ThreadPool, GrainBelowOneIsClamped) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, 10, 0, [&](std::int64_t b, std::int64_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, MinParallelRangeKeepsSmallRegionsInline) {
  ThreadPool pool(4);
  // Range below the threshold: one inline fn(begin, end) call, no fan-out.
  int calls = 0;
  pool.parallel_for(
      0, 32, 1,
      [&](std::int64_t b, std::int64_t e) {
        ++calls;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 32);
      },
      "small", /*min_parallel_range=*/64);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(pool.regions_inline(), 1);
  EXPECT_EQ(pool.regions_parallel(), 0);

  // Range at/above the threshold fans out as usual, covering every index
  // exactly once.
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(
      0, 64, 1,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      },
      "large", /*min_parallel_range=*/64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.regions_parallel(), 1);
}

TEST(ThreadPool, NestedRegionsRunInline) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> inner_total{0};
  pool.parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
    // A nested region must not deadlock or fan out again; it runs as one
    // inline call on the current executor.
    int inner_calls = 0;
    pool.parallel_for(0, 100, 1, [&](std::int64_t b, std::int64_t e) {
      ++inner_calls;
      inner_total.fetch_add(e - b);
    });
    EXPECT_EQ(inner_calls, 1);
  });
  EXPECT_EQ(inner_total.load(), 800);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 64, 1,
                        [&](std::int64_t b, std::int64_t) {
                          if (b == 17) throw std::runtime_error("shard 17");
                        }),
      std::runtime_error);
  // The pool survives the exception and keeps executing regions.
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, LabelStatsAttributeTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, 8, 1, [](std::int64_t, std::int64_t) {}, "alpha");
  pool.parallel_for(0, 6, 1, [](std::int64_t, std::int64_t) {}, "alpha");
  pool.parallel_for(0, 4, 1, [](std::int64_t, std::int64_t) {}, "beta");
  std::int64_t alpha_tasks = 0, alpha_regions = 0, beta_tasks = 0;
  for (const auto& s : pool.label_stats()) {
    if (std::string(s.label) == "alpha") {
      alpha_tasks = s.tasks;
      alpha_regions = s.regions;
    } else if (std::string(s.label) == "beta") {
      beta_tasks = s.tasks;
    }
  }
  EXPECT_EQ(alpha_tasks, 14);
  EXPECT_EQ(alpha_regions, 2);
  EXPECT_EQ(beta_tasks, 4);
}

TEST(ThreadPool, LabelStatsSortedRegardlessOfClaimOrder) {
  // Slots are claimed in first-use order; emission (exec_stats gauges and
  // the "exec" trace event) must still be byte-stable, so label_stats()
  // returns labels sorted even when claimed out of order.
  util::ThreadPool pool(2);
  pool.parallel_for(0, 4, 1, [](std::int64_t, std::int64_t) {}, "zeta");
  pool.parallel_for(0, 4, 1, [](std::int64_t, std::int64_t) {}, "alpha");
  pool.parallel_for(0, 4, 1, [](std::int64_t, std::int64_t) {}, "mid");
  const auto stats = pool.label_stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_STREQ(stats[0].label, "alpha");
  EXPECT_STREQ(stats[1].label, "mid");
  EXPECT_STREQ(stats[2].label, "zeta");
}

TEST(ThreadPool, GlobalPoolResizable) {
  util::ThreadPool::set_global_threads(2);
  EXPECT_EQ(util::ThreadPool::global().threads(), 2);
  std::atomic<std::int64_t> total{0};
  util::parallel_for(0, 32, 4, [&](std::int64_t b, std::int64_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 32);
  util::ThreadPool::set_global_threads(1);
  EXPECT_EQ(util::ThreadPool::global().threads(), 1);
  EXPECT_EQ(util::ThreadPool::global().worker_count(), 0);
}

}  // namespace
}  // namespace a3cs
