// Unit tests for the training-health watchdog (src/guard): the
// HealthMonitor's per-check verdicts, the GuardPolicy escalation ladder, the
// deterministic FaultInjector, the non-finite-aware fused norm passes in
// nn::Module, and the guarded rl::a2c_update. End-to-end recovery under
// injected faults (rollback from a healthy-tagged checkpoint, negative
// control with the guard off) lives in guard_recovery_test.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "guard/fault.h"
#include "guard/health.h"
#include "guard/policy.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "nn/zoo.h"
#include "rl/a2c.h"
#include "rl/rollout.h"
#include "util/rng.h"

namespace a3cs {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

guard::HealthSignals healthy_signals() {
  guard::HealthSignals s;
  s.iter = 1;
  s.loss_total = 0.5;
  s.loss_policy = 0.2;
  s.loss_value = 0.3;
  s.entropy = 1.0;
  s.grad_norm = 2.0;
  s.param_norm = 40.0;
  s.value_abs_max = 1.5;
  s.mean_reward = 0.1;
  return s;
}

// ------------------------------------------------------- health monitor

TEST(HealthMonitor, HealthySignalsProduceEmptyReport) {
  guard::HealthMonitor monitor;
  const auto report = monitor.evaluate(healthy_signals());
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.has_error());
  EXPECT_FALSE(report.has_warning());
  EXPECT_EQ(report.worst(), nullptr);
  EXPECT_EQ(report.summary(), "healthy");
}

TEST(HealthMonitor, NonFiniteLossIsError) {
  guard::HealthMonitor monitor;
  for (const double bad : {kNan, kInf, -kInf}) {
    auto s = healthy_signals();
    s.loss_total = bad;
    const auto report = monitor.evaluate(s);
    ASSERT_TRUE(report.has_error());
    EXPECT_EQ(report.worst()->check, guard::Check::kLossFinite);
  }
  // A NaN in an individual term must be caught even when the total is fine.
  auto s = healthy_signals();
  s.loss_value = kNan;
  EXPECT_TRUE(monitor.evaluate(s).has_error());
}

TEST(HealthMonitor, NonFiniteGradAndParamAreErrors) {
  guard::HealthMonitor monitor;
  auto s = healthy_signals();
  s.grad_finite = false;
  s.grad_norm = kNan;
  auto report = monitor.evaluate(s);
  ASSERT_TRUE(report.has_error());
  EXPECT_EQ(report.worst()->check, guard::Check::kGradFinite);

  s = healthy_signals();
  s.param_finite = false;
  s.param_norm = kNan;
  report = monitor.evaluate(s);
  ASSERT_TRUE(report.has_error());
  EXPECT_EQ(report.worst()->check, guard::Check::kParamFinite);
}

TEST(HealthMonitor, ExplosionThresholds) {
  guard::HealthConfig cfg;
  cfg.grad_norm_max = 10.0;
  cfg.param_norm_max = 100.0;
  cfg.value_abs_max = 5.0;
  guard::HealthMonitor monitor(cfg);

  auto s = healthy_signals();
  s.grad_norm = 11.0;
  auto report = monitor.evaluate(s);
  ASSERT_TRUE(report.has_error());
  EXPECT_EQ(report.worst()->check, guard::Check::kGradExplosion);
  EXPECT_EQ(report.worst()->threshold, 10.0);

  s = healthy_signals();
  s.param_norm = 101.0;
  EXPECT_EQ(monitor.evaluate(s).worst()->check, guard::Check::kParamExplosion);

  s = healthy_signals();
  s.value_abs_max = 6.0;
  EXPECT_EQ(monitor.evaluate(s).worst()->check, guard::Check::kValueExplosion);

  // 0 disables the individual check.
  guard::HealthConfig off;
  off.grad_norm_max = 0.0;
  guard::HealthMonitor lax(off);
  s = healthy_signals();
  s.grad_norm = 1e12;
  EXPECT_TRUE(lax.evaluate(s).ok());
}

TEST(HealthMonitor, CollapseAndStallAreWarningsNotErrors) {
  guard::HealthConfig cfg;
  cfg.entropy_floor = 0.01;
  cfg.alpha_entropy_floor = 0.1;
  cfg.rollout_stall_ms = 100.0;
  guard::HealthMonitor monitor(cfg);

  auto s = healthy_signals();
  s.entropy = 0.001;
  s.alpha_entropy_mean = 0.05;
  s.rollout_ms = 200.0;
  const auto report = monitor.evaluate(s);
  EXPECT_FALSE(report.has_error());
  EXPECT_TRUE(report.has_warning());
  EXPECT_EQ(report.verdicts.size(), 3u);

  // alpha_entropy_mean < 0 means "not applicable" and must not warn.
  s = healthy_signals();
  s.alpha_entropy_mean = -1.0;
  EXPECT_TRUE(monitor.evaluate(s).ok());
}

TEST(HealthMonitor, RewardStagnationUsesEwmaBestTracking) {
  guard::HealthConfig cfg;
  cfg.reward_stagnation_iters = 5;
  cfg.reward_ewma_alpha = 0.5;
  guard::HealthMonitor monitor(cfg);

  // Improving rewards: never stagnant.
  for (int i = 1; i <= 10; ++i) {
    auto s = healthy_signals();
    s.iter = i;
    s.mean_reward = 0.1 * i;
    EXPECT_TRUE(monitor.evaluate(s).ok()) << "iter " << i;
  }
  // Collapsed rewards: the EWMA stops improving, so the warning fires once
  // the window past the best iteration is exceeded.
  bool warned = false;
  for (int i = 11; i <= 25; ++i) {
    auto s = healthy_signals();
    s.iter = i;
    s.mean_reward = 0.0;
    const auto report = monitor.evaluate(s);
    if (!report.ok()) {
      EXPECT_EQ(report.worst()->check, guard::Check::kRewardStagnation);
      EXPECT_EQ(report.worst()->severity, guard::Severity::kWarn);
      warned = true;
    }
  }
  EXPECT_TRUE(warned);

  // reset() clears the history so the restored run is judged fresh.
  monitor.reset();
  auto s = healthy_signals();
  s.iter = 26;
  s.mean_reward = 1.0;
  EXPECT_TRUE(monitor.evaluate(s).ok());
}

TEST(HealthMonitor, WorstPrefersErrorOverWarning) {
  guard::HealthConfig cfg;
  cfg.entropy_floor = 0.01;
  guard::HealthMonitor monitor(cfg);
  auto s = healthy_signals();
  s.entropy = 0.001;      // warn...
  s.loss_total = kNan;    // ...and error
  const auto report = monitor.evaluate(s);
  ASSERT_NE(report.worst(), nullptr);
  EXPECT_EQ(report.worst()->severity, guard::Severity::kError);
  EXPECT_NE(report.summary().find("loss_finite(error)"), std::string::npos);
}

TEST(CheckFinite, HelperFlagsOnlyNonFinite) {
  EXPECT_EQ(guard::check_finite(guard::Check::kLossFinite, 1.0, "x").severity,
            guard::Severity::kOk);
  EXPECT_EQ(guard::check_finite(guard::Check::kLossFinite, kNan, "x").severity,
            guard::Severity::kError);
  EXPECT_EQ(guard::check_finite(guard::Check::kLossFinite, kInf, "x").severity,
            guard::Severity::kError);
}

// ------------------------------------------------------- guard policy

guard::HealthReport error_report() {
  guard::HealthReport r;
  guard::HealthVerdict v;
  v.check = guard::Check::kLossFinite;
  v.severity = guard::Severity::kError;
  r.verdicts.push_back(v);
  return r;
}

guard::HealthReport warn_report() {
  guard::HealthReport r;
  guard::HealthVerdict v;
  v.check = guard::Check::kEntropyFloor;
  v.severity = guard::Severity::kWarn;
  r.verdicts.push_back(v);
  return r;
}

TEST(GuardPolicy, EscalatesThroughTheLadder) {
  guard::GuardConfig cfg;
  cfg.mode = guard::GuardMode::kHeal;
  cfg.skip_budget = 2;
  cfg.soften_budget = 1;
  cfg.max_rollbacks = 1;
  guard::GuardPolicy policy(cfg);

  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kSkip);
  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kSkip);
  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kSoften);
  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kRollback);
  policy.on_rollback();
  EXPECT_EQ(policy.error_streak(), 0);
  EXPECT_EQ(policy.rollbacks(), 1);

  // The streak restarts after the rollback; the budget is spent, so the
  // ladder tops out at abort this time.
  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kSkip);
  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kSkip);
  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kSoften);
  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kAbort);
}

TEST(GuardPolicy, HealthyIterationResetsTheStreak) {
  guard::GuardConfig cfg;
  cfg.mode = guard::GuardMode::kHeal;
  cfg.skip_budget = 1;
  guard::GuardPolicy policy(cfg);
  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kSkip);
  EXPECT_EQ(policy.decide(guard::HealthReport{}), guard::GuardAction::kNone);
  EXPECT_EQ(policy.error_streak(), 0);
  // One-off errors keep getting answered with skips forever.
  EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kSkip);
}

TEST(GuardPolicy, WarningsNeverDriveTheLadder) {
  guard::GuardConfig cfg;
  cfg.mode = guard::GuardMode::kHeal;
  cfg.skip_budget = 0;
  guard::GuardPolicy policy(cfg);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(policy.decide(warn_report()), guard::GuardAction::kNone);
  }
  EXPECT_EQ(policy.error_streak(), 0);
}

TEST(GuardPolicy, WarnAndOffModesTakeNoAction) {
  for (const auto mode : {guard::GuardMode::kWarn, guard::GuardMode::kOff}) {
    guard::GuardConfig cfg;
    cfg.mode = mode;
    cfg.skip_budget = 0;
    cfg.soften_budget = 0;
    guard::GuardPolicy policy(cfg);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(policy.decide(error_report()), guard::GuardAction::kNone);
    }
  }
}

TEST(GuardMode, ParseRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(guard::parse_guard_mode("off"), guard::GuardMode::kOff);
  EXPECT_EQ(guard::parse_guard_mode("warn"), guard::GuardMode::kWarn);
  EXPECT_EQ(guard::parse_guard_mode("heal"), guard::GuardMode::kHeal);
  EXPECT_THROW(guard::parse_guard_mode("aggressive"), std::runtime_error);
  EXPECT_STREQ(guard::guard_mode_name(guard::GuardMode::kHeal), "heal");
}

TEST(GuardConfig, EnvOverridesWin) {
  ::setenv("A3CS_GUARD", "heal", 1);
  ::setenv("A3CS_GUARD_SKIPS", "7", 1);
  ::setenv("A3CS_GUARD_ROLLBACKS", "9", 1);
  ::setenv("A3CS_GUARD_GRAD_MAX", "123.5", 1);
  ::setenv("A3CS_GUARD_STALL_MS", "250", 1);
  guard::GuardConfig cfg;
  const auto out = cfg.with_env_overrides();
  EXPECT_EQ(out.mode, guard::GuardMode::kHeal);
  EXPECT_EQ(out.skip_budget, 7);
  EXPECT_EQ(out.max_rollbacks, 9);
  EXPECT_DOUBLE_EQ(out.health.grad_norm_max, 123.5);
  EXPECT_DOUBLE_EQ(out.health.rollout_stall_ms, 250.0);
  ::unsetenv("A3CS_GUARD");
  ::unsetenv("A3CS_GUARD_SKIPS");
  ::unsetenv("A3CS_GUARD_ROLLBACKS");
  ::unsetenv("A3CS_GUARD_GRAD_MAX");
  ::unsetenv("A3CS_GUARD_STALL_MS");
}

// ------------------------------------------------------ fault injector

TEST(FaultInjector, FiresAtArmPointAndConsumesCounts) {
  guard::FaultInjector injector;
  injector.arm(guard::FaultKind::kNanGrad, 5, 2);
  EXPECT_FALSE(injector.should_fire(guard::FaultKind::kNanGrad, 4));
  EXPECT_FALSE(injector.should_fire(guard::FaultKind::kInfLoss, 5));
  EXPECT_TRUE(injector.should_fire(guard::FaultKind::kNanGrad, 5));
  EXPECT_TRUE(injector.should_fire(guard::FaultKind::kNanGrad, 6));
  // Both counts consumed: even later iterations stay clean.
  EXPECT_FALSE(injector.should_fire(guard::FaultKind::kNanGrad, 7));
  EXPECT_EQ(injector.total_fired(), 2);
}

TEST(FaultInjector, SpentFaultDoesNotRefireAfterRollbackRewind) {
  // A guard rollback rewinds the iteration counter below the arm point; the
  // count gate must keep the fault from re-injecting during the replay.
  guard::FaultInjector injector;
  injector.arm(guard::FaultKind::kNanParam, 10, 1);
  EXPECT_TRUE(injector.should_fire(guard::FaultKind::kNanParam, 10));
  for (std::int64_t iter = 6; iter <= 20; ++iter) {
    EXPECT_FALSE(injector.should_fire(guard::FaultKind::kNanParam, iter))
        << "refired at " << iter;
  }
}

TEST(FaultInjector, ArmsFromEnvironmentSpecs) {
  ::setenv("A3CS_FAULT_NAN_GRAD", "3", 1);
  ::setenv("A3CS_FAULT_INF_LOSS", "5:2", 1);
  ::setenv("A3CS_FAULT_STALL_MS", "75", 1);
  guard::FaultInjector injector;
  injector.arm_from_env();
  EXPECT_TRUE(injector.should_fire(guard::FaultKind::kNanGrad, 3));
  EXPECT_FALSE(injector.should_fire(guard::FaultKind::kNanGrad, 4));
  EXPECT_TRUE(injector.should_fire(guard::FaultKind::kInfLoss, 5));
  EXPECT_TRUE(injector.should_fire(guard::FaultKind::kInfLoss, 6));
  EXPECT_FALSE(injector.should_fire(guard::FaultKind::kInfLoss, 7));
  EXPECT_FALSE(injector.should_fire(guard::FaultKind::kNanParam, 100));
  EXPECT_DOUBLE_EQ(injector.stall_ms(), 75.0);
  ::unsetenv("A3CS_FAULT_NAN_GRAD");
  ::unsetenv("A3CS_FAULT_INF_LOSS");
  ::unsetenv("A3CS_FAULT_STALL_MS");
}

TEST(FaultInjector, MalformedEnvSpecsArmNothing) {
  for (const char* bad : {"", "abc", "-1", "5:", "5:0", "5:x", "5;2"}) {
    ::setenv("A3CS_FAULT_NAN_GRAD", bad, 1);
    guard::FaultInjector injector;
    injector.arm_from_env();
    EXPECT_FALSE(injector.should_fire(guard::FaultKind::kNanGrad, 1000))
        << "spec '" << bad << "' should not arm";
  }
  ::unsetenv("A3CS_FAULT_NAN_GRAD");
}

TEST(FaultInjector, ResetDisarms) {
  guard::FaultInjector injector;
  injector.arm(guard::FaultKind::kTruncCkpt, 0, 100);
  EXPECT_TRUE(injector.should_fire(guard::FaultKind::kTruncCkpt, 0));
  injector.reset();
  EXPECT_FALSE(injector.should_fire(guard::FaultKind::kTruncCkpt, 0));
  EXPECT_EQ(injector.total_fired(), 0);
}

// -------------------------------------- fused norm passes (nn::Module)

TEST(NormStats, MatchesPerTensorNorms) {
  util::Rng rng(3);
  nn::Linear lin("l", 3, 4, rng);
  auto params = lin.parameters();
  params[0]->grad.fill(2.0f);
  params[1]->grad.fill(-1.0f);
  double expected = 0.0;
  for (auto* p : params) {
    const float n = p->grad.norm();
    expected += static_cast<double>(n) * n;
  }
  const auto gstats = nn::grad_norm_stats(params);
  EXPECT_TRUE(gstats.finite);
  EXPECT_NEAR(gstats.norm, std::sqrt(expected), 1e-6);

  const auto pstats = nn::param_norm_stats(params);
  EXPECT_TRUE(pstats.finite);
  EXPECT_GT(pstats.norm, 0.0);
}

TEST(NormStats, DetectsNanAndInf) {
  util::Rng rng(3);
  nn::Linear lin("l", 3, 4, rng);
  auto params = lin.parameters();
  params[0]->grad.fill(1.0f);
  params[1]->grad[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(nn::grad_norm_stats(params).finite);
  params[1]->grad[0] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(nn::grad_norm_stats(params).finite);
  params[1]->grad[0] = 0.0f;
  EXPECT_TRUE(nn::grad_norm_stats(params).finite);

  params[0]->value[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(nn::param_norm_stats(params).finite);
}

TEST(ClipGradNorm, NonFiniteNormZeroesGradients) {
  util::Rng rng(3);
  nn::Linear lin("l", 2, 2, rng);
  auto params = lin.parameters();
  params[0]->grad.fill(5.0f);
  params[1]->grad[0] = std::numeric_limits<float>::quiet_NaN();
  const float norm = nn::clip_grad_norm(params, 1.0f);
  EXPECT_FALSE(std::isfinite(norm));
  for (auto* p : params) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      ASSERT_EQ(p->grad[i], 0.0f) << p->name << "[" << i << "]";
    }
  }
}

TEST(ZeroGradients, ClearsEveryElement) {
  util::Rng rng(3);
  nn::Linear lin("l", 2, 3, rng);
  auto params = lin.parameters();
  for (auto* p : params) p->grad.fill(1.5f);
  nn::zero_gradients(params);
  for (auto* p : params) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      ASSERT_EQ(p->grad[i], 0.0f);
    }
  }
}

// --------------------------------------------------- guarded a2c update

TEST(GuardedA2cUpdate, PoisonedNetSkipsTheOptimizerStep) {
  auto probe = arcade::make_game("Catch", 1);
  util::Rng rng(12);
  auto agent = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                   probe->num_actions(), rng);
  arcade::VecEnv envs("Catch", 2, 9);
  rl::RolloutCollector collector(envs, util::Rng(10));
  const auto rollout = collector.collect(*agent.net, 5);

  // Poison one weight: the forward produces NaN logits, the loss goes NaN,
  // and the guarded update must drop the batch instead of stepping.
  auto params = agent.net->parameters();
  params.front()->value[0] = std::numeric_limits<float>::quiet_NaN();
  std::vector<tensor::Tensor> before;
  for (auto* p : params) before.push_back(p->value);

  rl::A2cConfig cfg;
  cfg.loss = rl::no_distill_coefficients();
  nn::RmsProp opt(1e-3);
  const auto stats = rl::a2c_update(*agent.net, rollout, cfg, opt, nullptr);
  EXPECT_TRUE(stats.skipped);
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::int64_t k = 0; k < params[i]->value.numel(); ++k) {
      const float now = params[i]->value[k];
      const float was = before[i][k];
      // Bit-identical including the NaN slot (NaN != NaN, compare via isnan).
      ASSERT_TRUE(now == was || (std::isnan(now) && std::isnan(was)))
          << "param " << i << "[" << k << "] changed in a skipped update";
    }
  }
  // The gradients were zeroed so a later (healthy) step is unaffected.
  EXPECT_TRUE(nn::grad_norm_stats(params).finite);
  EXPECT_EQ(nn::grad_norm_stats(params).norm, 0.0);
}

}  // namespace
}  // namespace a3cs
