// Property-based sweeps: randomized invariants across the whole stack.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "accel/predictor.h"
#include "accel/space.h"
#include "arcade/games.h"
#include "nas/arch.h"
#include "nn/zoo.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace a3cs {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ------------------------------------------------- predictor invariants ---

class PredictorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PredictorPropertyTest, InvariantsHoldForRandomConfigs) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  accel::Predictor pred;

  // Random network: 3-8 layers of mixed kinds.
  std::vector<nn::LayerSpec> specs;
  int c = 2 + rng.uniform_int(6);
  int h = 12, w = 12;
  const int layers = 3 + rng.uniform_int(6);
  for (int l = 0; l < layers; ++l) {
    const int kind = rng.uniform_int(3);
    if (kind == 0 || h < 3) {
      specs.push_back(
          nn::LayerSpec::linear("fc" + std::to_string(l), c * h * w, 64));
      c = 64;
      h = w = 1;
    } else if (kind == 1) {
      const int oc = 4 + rng.uniform_int(28);
      const int stride = 1 + rng.uniform_int(2);
      specs.push_back(nn::LayerSpec::conv("conv" + std::to_string(l), c, oc,
                                          rng.bernoulli(0.5) ? 3 : 5, stride,
                                          h, w));
      c = oc;
      h = specs.back().out_h;
      w = specs.back().out_w;
    } else {
      specs.push_back(nn::LayerSpec::depthwise("dw" + std::to_string(l), c, 3,
                                               1, h, w));
    }
  }
  nn::assign_sequential_groups(specs);

  const int chunks = 1 + rng.uniform_int(4);
  accel::AcceleratorSpace space(chunks, nn::num_groups(specs));
  const auto cfg = space.decode(space.random_choices(rng));
  const auto eval = pred.evaluate(specs, cfg);

  // II is the max chunk, latency the sum.
  double sum = 0.0, mx = 0.0;
  for (double cyc : eval.chunk_cycles) {
    sum += cyc;
    mx = std::max(mx, cyc);
  }
  EXPECT_NEAR(eval.latency_cycles, sum, 1e-6);
  EXPECT_NEAR(eval.ii_cycles, mx, 1e-6);

  // Per-layer costs are positive and finite; groups partition the latency.
  double group_sum = 0.0;
  for (int g = 0; g < nn::num_groups(specs); ++g) {
    group_sum += eval.group_cycles(specs, g);
  }
  EXPECT_NEAR(group_sum, eval.latency_cycles, 1e-6);
  for (const auto& lc : eval.layers) {
    EXPECT_GT(lc.cycles, 0.0);
    EXPECT_TRUE(std::isfinite(lc.cycles));
    EXPECT_GE(lc.cycles, std::max(lc.compute_cycles, lc.memory_cycles) - 1e-9);
    EXPECT_GT(lc.energy_nj, 0.0);
  }

  // DSP accounting and feasibility consistency.
  int pes = 0;
  for (const auto& chunk : cfg.chunks) pes += chunk.num_pes();
  EXPECT_EQ(eval.dsp_used, pes);
  const bool within = eval.dsp_used <= pred.budget().dsp &&
                      eval.bram_used <= pred.budget().bram18k;
  EXPECT_EQ(eval.feasible, within);
  EXPECT_EQ(eval.feasible, eval.resource_overflow == 0.0);
  if (eval.feasible) {
    EXPECT_NEAR(eval.fps,
                pred.budget().clock_mhz * 1e6 / eval.ii_cycles, 1e-3);
  } else {
    EXPECT_EQ(eval.fps, 0.0);
  }
  EXPECT_TRUE(std::isfinite(pred.scalar_cost(eval)));
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, PredictorPropertyTest,
                         ::testing::Range(0, 25));

// ------------------------------------------------- derived-arch sweeps ----

class ArchPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ArchPropertyTest, RandomArchBuildsAndMatchesSpecs) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  nas::SearchSpaceConfig cfg;
  cfg.num_cells = 3 + rng.uniform_int(7);
  const auto arch = nas::DerivedArch::random(cfg, rng);
  const nn::ObsSpec obs{3, 12, 12};

  auto bb = nas::build_derived_backbone(arch, obs, cfg, rng);
  const auto specs = nas::derived_specs(arch, obs, cfg);
  ASSERT_EQ(bb.specs.size(), specs.size());
  EXPECT_EQ(nn::network_macs(bb.specs), nn::network_macs(specs));
  EXPECT_EQ(nn::network_params(bb.specs), nn::network_params(specs));

  // The module is runnable and parameter-consistent with the specs.
  Tensor x(Shape::nchw(1, 3, 12, 12), 0.1f);
  const Tensor y = bb.module->forward(x);
  EXPECT_EQ(y.shape(), Shape::mat(1, 256));
  std::vector<nn::Parameter*> params;
  bb.module->collect_parameters(params);
  std::int64_t total = 0;
  for (auto* p : params) total += p->numel();
  EXPECT_EQ(total, nn::network_params(specs));

  // Group ids cover stem(0) .. fc(num_cells+1) without gaps beyond skips.
  for (const auto& s : specs) {
    EXPECT_GE(s.group, 0);
    EXPECT_LE(s.group, cfg.num_cells + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomArchs, ArchPropertyTest,
                         ::testing::Range(0, 15));

// ------------------------------------------------- tensor round trips -----

class SerializeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializeFuzzTest, RandomTensorsRoundTrip) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 3);
  Shape shape;
  switch (rng.uniform_int(4)) {
    case 0: shape = Shape::vec(1 + rng.uniform_int(64)); break;
    case 1: shape = Shape::mat(1 + rng.uniform_int(16), 1 + rng.uniform_int(16)); break;
    case 2:
      shape = Shape::nchw(1 + rng.uniform_int(3), 1 + rng.uniform_int(8),
                          1 + rng.uniform_int(12), 1 + rng.uniform_int(12));
      break;
    default: shape = Shape::scalar(); break;
  }
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1e4, 1e4));
  }
  std::stringstream ss;
  tensor::write_tensor(ss, t);
  const Tensor u = tensor::read_tensor(ss);
  ASSERT_EQ(u.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) ASSERT_FLOAT_EQ(u[i], t[i]);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SerializeFuzzTest, ::testing::Range(0, 20));

// ------------------------------------------------- GEMM composition -------

TEST(GemmProperty, CompositionAssociates) {
  util::Rng rng(42);
  const int n = 6;
  Tensor a(Shape::mat(n, n)), b(Shape::mat(n, n)), x(Shape::mat(n, 1));
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a[i] = static_cast<float>(rng.uniform(-1, 1));
    b[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  for (int i = 0; i < n; ++i) x[i] = static_cast<float>(rng.uniform(-1, 1));

  // (A @ B) @ x
  Tensor ab(Shape::mat(n, n)), ab_x(Shape::mat(n, 1));
  tensor::gemm(a, false, b, false, ab);
  tensor::gemm(ab, false, x, false, ab_x);
  // A @ (B @ x)
  Tensor bx(Shape::mat(n, 1)), a_bx(Shape::mat(n, 1));
  tensor::gemm(b, false, x, false, bx);
  tensor::gemm(a, false, bx, false, a_bx);

  for (int i = 0; i < n; ++i) EXPECT_NEAR(ab_x[i], a_bx[i], 1e-4);
}

TEST(GemmProperty, TransposeIsInvolution) {
  util::Rng rng(43);
  Tensor a(Shape::mat(4, 7));
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  // (A^T)^T @ I == A: compute A^T @ I' then transpose again via gemm flags.
  Tensor eye(Shape::mat(4, 4));
  for (int i = 0; i < 4; ++i) eye.at2(i, i) = 1.0f;
  Tensor out(Shape::mat(4, 7));
  // out = eye @ A (no transpose) must equal A.
  tensor::gemm(eye, false, a, false, out);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(out[i], a[i]);
  // out = (A^T)^T via trans_a on A^T data is exercised by GemmTest; here we
  // check eye^T == eye path.
  Tensor out2(Shape::mat(4, 7));
  tensor::gemm(eye, true, a, false, out2);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(out2[i], a[i]);
}

// ------------------------------------------------- env score invariant ----

class ScoreAccountingTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScoreAccountingTest, EpisodeScoreEqualsRewardSum) {
  auto env = arcade::make_game(GetParam(), 1234);
  env->reset();
  util::Rng rng(77);
  double total = 0.0;
  bool done = false;
  while (!done) {
    const auto r = env->step(rng.uniform_int(env->num_actions()));
    total += r.reward;
    done = r.done;
  }
  // GridGame tracks its own episode_score; the two must agree. We can't
  // access it through Env, so instead re-run deterministically and compare.
  auto env2 = arcade::make_game(GetParam(), 1234);
  env2->reset();
  util::Rng rng2(77);
  double total2 = 0.0;
  bool done2 = false;
  while (!done2) {
    const auto r = env2->step(rng2.uniform_int(env2->num_actions()));
    total2 += r.reward;
    done2 = r.done;
  }
  EXPECT_DOUBLE_EQ(total, total2);
}

INSTANTIATE_TEST_SUITE_P(AllGames, ScoreAccountingTest,
                         ::testing::ValuesIn(arcade::all_game_titles()));

}  // namespace
}  // namespace a3cs
