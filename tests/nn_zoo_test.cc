#include <gtest/gtest.h>

#include <filesystem>

#include "grad_check.h"
#include "nn/actor_critic.h"
#include "nn/layer_spec.h"
#include "nn/zoo.h"

namespace a3cs {
namespace {

using nn::LayerSpec;
using nn::ObsSpec;
using nn::Shape;
using nn::Tensor;

const ObsSpec kObs{3, 12, 12};

// ----------------------------------------------------------- LayerSpec ----

TEST(LayerSpec, ConvGeometryAndMacs) {
  const auto s = LayerSpec::conv("c", 3, 8, 3, 2, 12, 12);
  EXPECT_EQ(s.out_h, 6);
  EXPECT_EQ(s.out_w, 6);
  EXPECT_EQ(s.macs(), 6LL * 6 * 8 * 3 * 3 * 3);
  EXPECT_EQ(s.params(), 8LL * 3 * 9 + 8);
  EXPECT_EQ(s.input_elems(), 3 * 12 * 12);
  EXPECT_EQ(s.output_elems(), 8 * 6 * 6);
}

TEST(LayerSpec, DepthwiseMacs) {
  const auto s = LayerSpec::depthwise("d", 8, 3, 1, 6, 6);
  EXPECT_EQ(s.kind, LayerSpec::Kind::kDepthwiseConv);
  EXPECT_EQ(s.macs(), 6LL * 6 * 8 * 9);
  EXPECT_EQ(s.params(), 8LL * 9 + 8);
}

TEST(LayerSpec, LinearMacs) {
  const auto s = LayerSpec::linear("l", 128, 256);
  EXPECT_EQ(s.macs(), 128LL * 256);
  EXPECT_EQ(s.params(), 128LL * 256 + 256);
}

TEST(LayerSpec, NetworkAggregates) {
  std::vector<LayerSpec> specs = {LayerSpec::linear("a", 10, 20),
                                  LayerSpec::linear("b", 20, 5)};
  EXPECT_EQ(nn::network_macs(specs), 200 + 100);
  EXPECT_EQ(nn::network_params(specs), 220 + 105);
}

TEST(LayerSpec, SequentialGroupAssignment) {
  std::vector<LayerSpec> specs = {LayerSpec::linear("a", 2, 2),
                                  LayerSpec::linear("b", 2, 2),
                                  LayerSpec::linear("c", 2, 2)};
  specs[1].group = 5;
  nn::assign_sequential_groups(specs);
  EXPECT_EQ(specs[0].group, 6);
  EXPECT_EQ(specs[1].group, 5);
  EXPECT_EQ(specs[2].group, 7);
  EXPECT_EQ(nn::num_groups(specs), 8);
}

// ----------------------------------------------------------------- zoo ----

TEST(Zoo, FiveModelNames) {
  const auto& names = nn::zoo_model_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "Vanilla");
  EXPECT_EQ(names[4], "ResNet-74");
}

class ZooModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModelTest, BuildsAndRuns) {
  util::Rng rng(50);
  auto agent = nn::build_zoo_agent(GetParam(), kObs, 4, rng);
  ASSERT_NE(agent.net, nullptr);
  EXPECT_FALSE(agent.specs.empty());

  Tensor obs(Shape::nchw(2, kObs.channels, kObs.height, kObs.width), 0.3f);
  const auto out = agent.net->forward(obs);
  EXPECT_EQ(out.logits.shape(), Shape::mat(2, 4));
  EXPECT_EQ(out.value.shape(), Shape::mat(2, 1));
  for (std::int64_t i = 0; i < out.logits.numel(); ++i) {
    EXPECT_FALSE(std::isnan(out.logits[i]));
  }
}

TEST_P(ZooModelTest, SpecsParamsMatchModuleParams) {
  util::Rng rng(51);
  auto agent = nn::build_zoo_agent(GetParam(), kObs, 4, rng);
  // Heads (policy/value) are not in the backbone specs; subtract them.
  const std::int64_t head_params = (256LL * 4 + 4) + (256 + 1);
  EXPECT_EQ(nn::network_params(agent.specs),
            agent.net->num_parameters() - head_params);
}

TEST_P(ZooModelTest, SpecsHaveSequentialGroups) {
  util::Rng rng(52);
  auto agent = nn::build_zoo_agent(GetParam(), kObs, 4, rng);
  for (const auto& s : agent.specs) EXPECT_GE(s.group, 0);
  EXPECT_EQ(nn::num_groups(agent.specs),
            static_cast<int>(agent.specs.size()));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModelTest,
                         ::testing::ValuesIn(nn::zoo_model_names()));

TEST(Zoo, FlopsLadderIsMonotone) {
  // The paper's premise: Vanilla < ResNet-14 < -20 < -38 < -74 in FLOPs.
  std::int64_t prev = 0;
  for (const auto& name : nn::zoo_model_names()) {
    const auto specs = nn::zoo_model_specs(name, kObs, 4);
    const std::int64_t macs = nn::network_macs(specs);
    EXPECT_GT(macs, prev) << name;
    prev = macs;
  }
}

TEST(Zoo, UnknownModelThrows) {
  util::Rng rng(1);
  EXPECT_THROW(nn::build_zoo_agent("ResNet-9000", kObs, 4, rng),
               std::runtime_error);
}

TEST(Zoo, ResNetDepthsFollowPaperFormula) {
  // (depth - 2) / 6 blocks per stage; each block = 2 convs (+ projection).
  const auto r14 = nn::zoo_model_specs("ResNet-14", kObs, 4);
  const auto r20 = nn::zoo_model_specs("ResNet-20", kObs, 4);
  // ResNet-14: stem + 3 stages x 2 blocks x 2 convs + 2 projections + fc.
  EXPECT_EQ(r14.size(), 1u + 12u + 2u + 1u);
  EXPECT_EQ(r20.size(), 1u + 18u + 2u + 1u);
}

// --------------------------------------------------------- ActorCritic ----

TEST(ActorCritic, HeadGradientsReachBackbone) {
  util::Rng rng(53);
  auto agent = nn::build_zoo_agent("Vanilla", kObs, 3, rng);
  Tensor obs(Shape::nchw(1, kObs.channels, kObs.height, kObs.width), 0.2f);
  agent.net->forward(obs);
  Tensor dlogits(Shape::mat(1, 3), {0.1f, -0.2f, 0.1f});
  Tensor dvalue(Shape::mat(1, 1), {0.5f});
  agent.net->zero_grad();
  agent.net->backward(dlogits, dvalue);
  // The very first backbone parameter (stem conv weight) must see gradient.
  EXPECT_GT(agent.net->parameters().front()->grad.abs_max(), 0.0f);
}

TEST(ActorCritic, SaveLoadRoundTrip) {
  util::Rng rng(54);
  auto a = nn::build_zoo_agent("Vanilla", kObs, 3, rng);
  util::Rng rng2(999);
  auto b = nn::build_zoo_agent("Vanilla", kObs, 3, rng2);

  const std::string path = ::testing::TempDir() + "/agent_ckpt.bin";
  a.net->save(path);
  b.net->load(path);

  Tensor obs(Shape::nchw(1, kObs.channels, kObs.height, kObs.width), 0.4f);
  const auto ya = a.net->forward(obs);
  const auto yb = b.net->forward(obs);
  for (std::int64_t i = 0; i < ya.logits.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.logits[i], yb.logits[i]);
  }
  EXPECT_FLOAT_EQ(ya.value[0], yb.value[0]);
  std::filesystem::remove(path);
}

TEST(ActorCritic, CopyFromMatchesOutputs) {
  util::Rng rng(55), rng2(56);
  auto a = nn::build_zoo_agent("Vanilla", kObs, 3, rng);
  auto b = nn::build_zoo_agent("Vanilla", kObs, 3, rng2);
  b.net->copy_from(*a.net);
  Tensor obs(Shape::nchw(1, kObs.channels, kObs.height, kObs.width), -0.1f);
  const auto ya = a.net->forward(obs);
  const auto yb = b.net->forward(obs);
  for (std::int64_t i = 0; i < ya.logits.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.logits[i], yb.logits[i]);
  }
}

TEST(ActorCritic, LoadRejectsWrongArchitecture) {
  util::Rng rng(57);
  auto small = nn::build_zoo_agent("Vanilla", kObs, 3, rng);
  auto big = nn::build_zoo_agent("ResNet-14", kObs, 3, rng);
  const std::string path = ::testing::TempDir() + "/mismatch_ckpt.bin";
  small.net->save(path);
  EXPECT_THROW(big.net->load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ActorCritic, BatchSizeCanVaryBetweenForwards) {
  util::Rng rng(58);
  auto agent = nn::build_zoo_agent("Vanilla", kObs, 3, rng);
  Tensor obs1(Shape::nchw(1, kObs.channels, kObs.height, kObs.width), 0.1f);
  Tensor obs8(Shape::nchw(8, kObs.channels, kObs.height, kObs.width), 0.1f);
  const auto y1 = agent.net->forward(obs1);
  const auto y8 = agent.net->forward(obs8);
  EXPECT_EQ(y1.logits.shape()[0], 1);
  EXPECT_EQ(y8.logits.shape()[0], 8);
  // Identical rows (same input) must produce identical logits.
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(y8.logits.at2(0, j), y8.logits.at2(7, j), 1e-5);
    EXPECT_NEAR(y8.logits.at2(0, j), y1.logits.at2(0, j), 1e-5);
  }
}

}  // namespace
}  // namespace a3cs
