#include <gtest/gtest.h>

#include "das/das.h"
#include "nn/zoo.h"

namespace a3cs {
namespace {

using accel::AcceleratorSpace;
using accel::Predictor;

std::vector<nn::LayerSpec> resnet14_specs() {
  return nn::zoo_model_specs("ResNet-14", nn::ObsSpec{3, 12, 12}, 4);
}

TEST(Das, SearchReturnsFeasibleConfig) {
  const auto specs = resnet14_specs();
  AcceleratorSpace space(4, nn::num_groups(specs));
  Predictor pred;
  das::DasConfig cfg;
  cfg.iterations = 300;
  das::DasEngine engine(space, pred, cfg);
  const auto result = engine.search(specs);
  EXPECT_TRUE(result.eval.feasible);
  EXPECT_GT(result.eval.fps, 0.0);
  EXPECT_LE(result.eval.dsp_used, pred.budget().dsp);
  EXPECT_LE(result.eval.bram_used, pred.budget().bram18k);
  EXPECT_EQ(result.cost_curve.size(), 300u);
}

TEST(Das, CostImprovesOverSearch) {
  const auto specs = resnet14_specs();
  AcceleratorSpace space(4, nn::num_groups(specs));
  Predictor pred;
  das::DasConfig cfg;
  cfg.iterations = 600;
  das::DasEngine engine(space, pred, cfg);
  const auto result = engine.search(specs);
  // Average sampled cost over the first vs last 100 iterations must drop.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 100; ++i) {
    early += result.cost_curve[static_cast<std::size_t>(i)];
    late += result.cost_curve[result.cost_curve.size() - 1 - static_cast<std::size_t>(i)];
  }
  EXPECT_LT(late, early);
}

TEST(Das, BeatsRandomSearchAtEqualBudget) {
  const auto specs = resnet14_specs();
  AcceleratorSpace space(4, nn::num_groups(specs));
  Predictor pred;
  das::DasConfig cfg;
  cfg.iterations = 1000;
  das::DasEngine engine(space, pred, cfg);
  const auto das_result = engine.search(specs);
  // Random search with the same number of predictor evaluations.
  const auto rnd = das::random_search(space, pred, specs,
                                      cfg.iterations * cfg.samples_per_iter,
                                      999);
  EXPECT_GT(das_result.eval.fps, 0.8 * rnd.eval.fps)
      << "DAS should be at least competitive with random search";
}

TEST(Das, StepIsIncremental) {
  const auto specs = resnet14_specs();
  AcceleratorSpace space(2, nn::num_groups(specs));
  Predictor pred;
  das::DasEngine engine(space, pred);
  const double tau0 = engine.temperature();
  engine.step(specs, 5);
  EXPECT_LT(engine.temperature(), tau0);
  const auto cfg = engine.derive();
  EXPECT_EQ(cfg.num_chunks(), 2);
  const auto eval = engine.derive_eval(specs);
  EXPECT_GT(eval.ii_cycles, 0.0);
}

TEST(Das, DeriveIsDeterministic) {
  const auto specs = resnet14_specs();
  AcceleratorSpace space(2, nn::num_groups(specs));
  Predictor pred;
  das::DasEngine engine(space, pred);
  engine.step(specs, 20);
  const auto a = engine.derive();
  const auto b = engine.derive();
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(RandomSearch, FindsFeasibleOnReasonableSpace) {
  const auto specs = resnet14_specs();
  AcceleratorSpace space(4, nn::num_groups(specs));
  Predictor pred;
  const auto result = das::random_search(space, pred, specs, 200, 7);
  EXPECT_TRUE(result.eval.feasible);
  EXPECT_EQ(result.cost_curve.size(), 200u);
}

TEST(Exhaustive, RefusesHugeSpaces) {
  const auto specs = resnet14_specs();
  AcceleratorSpace space(4, nn::num_groups(specs));
  Predictor pred;
  EXPECT_THROW(das::exhaustive_search(space, pred, specs, 1e6),
               std::runtime_error);
}

TEST(Exhaustive, MatchesBruteForceOptimumOnTinySpace) {
  // Single-chunk, single-group space: 8*8*3*3*4*4*6*1 = 55296 configs.
  std::vector<nn::LayerSpec> specs = {
      nn::LayerSpec::conv("c", 8, 16, 3, 1, 12, 12)};
  nn::assign_sequential_groups(specs);
  AcceleratorSpace space(1, 1);
  Predictor pred;
  const auto best = das::exhaustive_search(space, pred, specs, 1e6);
  EXPECT_TRUE(best.eval.feasible);

  // No random sample may beat the exhaustive optimum.
  const auto rnd = das::random_search(space, pred, specs, 500, 11);
  EXPECT_LE(best.best_cost, rnd.best_cost + 1e-12);
}

TEST(Das, ApproachesExhaustiveOptimumOnTinySpace) {
  std::vector<nn::LayerSpec> specs = {
      nn::LayerSpec::conv("c", 8, 16, 3, 1, 12, 12)};
  nn::assign_sequential_groups(specs);
  AcceleratorSpace space(1, 1);
  Predictor pred;
  const auto best = das::exhaustive_search(space, pred, specs, 1e6);

  das::DasConfig cfg;
  cfg.iterations = 800;
  das::DasEngine engine(space, pred, cfg);
  const auto result = engine.search(specs);
  ASSERT_TRUE(result.eval.feasible);
  // Within 2x of the global optimum's cost (the optimum's II is tiny, so
  // a factor bound is the right scale-free criterion).
  EXPECT_LE(result.best_cost, 2.0 * best.best_cost)
      << "DAS cost " << result.best_cost << " vs optimum " << best.best_cost;
}

}  // namespace
}  // namespace a3cs
