#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "util/thread_pool.h"

namespace a3cs {
namespace {

using arcade::Env;
using arcade::StepResult;
using tensor::Tensor;

// ----------------------------------------------- properties of every game --

class GameTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GameTest, ResetProducesStandardFrame) {
  auto env = arcade::make_game(GetParam(), 1);
  const Tensor obs = env->reset();
  const auto spec = env->obs_spec();
  EXPECT_EQ(obs.shape(),
            tensor::Shape::nchw(1, spec.channels, spec.height, spec.width));
  EXPECT_EQ(spec.channels, arcade::kPlanes);
  EXPECT_EQ(spec.height, arcade::kGridH);
  EXPECT_EQ(spec.width, arcade::kGridW);
}

TEST_P(GameTest, ObservationsStayInUnitRange) {
  auto env = arcade::make_game(GetParam(), 7);
  Tensor obs = env->reset();
  util::Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    for (std::int64_t i = 0; i < obs.numel(); ++i) {
      ASSERT_GE(obs[i], 0.0f);
      ASSERT_LE(obs[i], 1.0f);
    }
    const auto r = env->step(rng.uniform_int(env->num_actions()));
    obs = r.obs;
    if (r.done) obs = env->reset();
  }
}

TEST_P(GameTest, PlayerVisibleInPlaneZero) {
  auto env = arcade::make_game(GetParam(), 11);
  const Tensor obs = env->reset();
  float plane0 = 0.0f;
  for (int y = 0; y < arcade::kGridH; ++y) {
    for (int x = 0; x < arcade::kGridW; ++x) {
      plane0 += obs.at4(0, 0, y, x);
    }
  }
  EXPECT_GT(plane0, 0.0f) << "player avatar missing from plane 0";
}

TEST_P(GameTest, DeterministicUnderSameSeed) {
  auto a = arcade::make_game(GetParam(), 99);
  auto b = arcade::make_game(GetParam(), 99);
  Tensor oa = a->reset(), ob = b->reset();
  util::Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    ASSERT_TRUE(oa.same_shape(ob));
    for (std::int64_t i = 0; i < oa.numel(); ++i) {
      ASSERT_FLOAT_EQ(oa[i], ob[i]) << "step " << t;
    }
    const int action = rng.uniform_int(a->num_actions());
    const auto ra = a->step(action);
    const auto rb = b->step(action);
    ASSERT_DOUBLE_EQ(ra.reward, rb.reward);
    ASSERT_EQ(ra.done, rb.done);
    if (ra.done) {
      oa = a->reset();
      ob = b->reset();
    } else {
      oa = ra.obs;
      ob = rb.obs;
    }
  }
}

TEST_P(GameTest, DifferentSeedsEventuallyDiverge) {
  auto a = arcade::make_game(GetParam(), 1);
  auto b = arcade::make_game(GetParam(), 2);
  Tensor oa = a->reset(), ob = b->reset();
  bool diverged = false;
  util::Rng rng(6);
  for (int t = 0; t < 200 && !diverged; ++t) {
    for (std::int64_t i = 0; i < oa.numel(); ++i) {
      if (oa[i] != ob[i]) {
        diverged = true;
        break;
      }
    }
    const int action = rng.uniform_int(a->num_actions());
    auto ra = a->step(action);
    auto rb = b->step(action);
    oa = ra.done ? a->reset() : ra.obs;
    ob = rb.done ? b->reset() : rb.obs;
  }
  EXPECT_TRUE(diverged);
}

TEST_P(GameTest, EpisodeTerminates) {
  auto env = arcade::make_game(GetParam(), 13);
  env->reset();
  util::Rng rng(8);
  int steps = 0;
  while (true) {
    const auto r = env->step(rng.uniform_int(env->num_actions()));
    ++steps;
    ASSERT_LE(steps, 2000) << "episode never terminated";
    if (r.done) break;
  }
  EXPECT_LE(steps, 500);  // all configs cap at <= 400 steps
}

TEST_P(GameTest, StepAfterDoneThrows) {
  auto env = arcade::make_game(GetParam(), 17);
  env->reset();
  util::Rng rng(9);
  while (!env->step(rng.uniform_int(env->num_actions())).done) {
  }
  EXPECT_THROW(env->step(0), std::runtime_error);
}

TEST_P(GameTest, OutOfRangeActionThrows) {
  auto env = arcade::make_game(GetParam(), 19);
  env->reset();
  EXPECT_THROW(env->step(env->num_actions()), std::runtime_error);
  EXPECT_THROW(env->step(-1), std::runtime_error);
}

TEST_P(GameTest, NoopPolicyIsSafe) {
  // Null-op starts (the evaluation protocol) require action 0 to be valid
  // for arbitrarily many steps.
  auto env = arcade::make_game(GetParam(), 23);
  env->reset();
  for (int t = 0; t < 100; ++t) {
    if (env->step(0).done) env->reset();
  }
}

TEST_P(GameTest, NameMatchesTitle) {
  auto env = arcade::make_game(GetParam(), 1);
  EXPECT_EQ(env->name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllGames, GameTest,
                         ::testing::ValuesIn(arcade::all_game_titles()));

// ------------------------------------------------------------ registry ----

TEST(Registry, UnknownGameThrows) {
  EXPECT_THROW(arcade::make_game("Zork", 1), std::invalid_argument);
  EXPECT_FALSE(arcade::is_known_game("Zork"));
  EXPECT_TRUE(arcade::is_known_game("Breakout"));
}

TEST(Registry, PaperGameSubsetsAreRegistered) {
  EXPECT_EQ(arcade::table1_games().size(), 16u);
  EXPECT_EQ(arcade::table2_games().size(), 12u);
  EXPECT_EQ(arcade::table3_games().size(), 6u);
  EXPECT_EQ(arcade::figure_games().size(), 4u);
  for (const auto& list :
       {arcade::table1_games(), arcade::table2_games(), arcade::table3_games(),
        arcade::figure_games()}) {
    for (const auto& g : list) {
      EXPECT_TRUE(arcade::is_known_game(g)) << g;
    }
  }
}

TEST(Registry, Table3MatchesFa3cGameSet) {
  const auto& games = arcade::table3_games();
  const std::set<std::string> expected = {"BeamRider", "Breakout", "Pong",
                                          "Qbert", "Seaquest",
                                          "SpaceInvaders"};
  EXPECT_EQ(std::set<std::string>(games.begin(), games.end()), expected);
}

// ------------------------------------------------------- game mechanics ---

TEST(Mechanics, CatchRewardsRequireCatching) {
  // A paddle pinned to the left edge cannot catch pellets spawning on the
  // right half, so a full-tracking policy must outscore the pinned one.
  auto score_policy = [](bool track) {
    double total = 0.0;
    auto env = arcade::make_game("Catch", 31);
    Tensor obs = env->reset();
    bool done = false;
    while (!done) {
      int action = 1;  // push left
      if (track) {
        // Find paddle x and lowest pellet x.
        int paddle_x = -1, pellet_x = -1, pellet_y = -1;
        for (int y = 0; y < arcade::kGridH; ++y) {
          for (int x = 0; x < arcade::kGridW; ++x) {
            if (obs.at4(0, 0, y, x) > 0 && paddle_x < 0) paddle_x = x;
            if (obs.at4(0, 1, y, x) > 0 && y > pellet_y) {
              pellet_y = y;
              pellet_x = x;
            }
          }
        }
        action = 0;
        if (pellet_x >= 0 && paddle_x >= 0) {
          if (pellet_x > paddle_x + 1) action = 2;
          else if (pellet_x < paddle_x) action = 1;
        }
      }
      const auto r = env->step(action);
      total += r.reward;
      done = r.done;
      obs = r.obs;
    }
    return total;
  };
  EXPECT_GT(score_policy(true), score_policy(false) + 5.0);
}

TEST(Mechanics, ShooterFiringScores) {
  // Holding fire in SpaceInvaders must eventually score kills; never firing
  // scores nothing (formation never reaches the bottom within a few steps).
  auto env = arcade::make_game("SpaceInvaders", 41);
  env->reset();
  double fire_score = 0.0;
  for (int t = 0; t < 300; ++t) {
    const auto r = env->step(3);  // fire
    fire_score += r.reward;
    if (r.done) break;
  }
  EXPECT_GT(fire_score, 0.0);
}

TEST(Mechanics, BoxingEndsAtKnockout) {
  // With target_score = 100, an episode can never exceed +100 player hits.
  auto env = arcade::make_game("Boxing", 43);
  env->reset();
  util::Rng rng(1);
  double total = 0.0;
  bool done = false;
  while (!done) {
    const auto r = env->step(rng.uniform_int(env->num_actions()));
    total += r.reward;
    done = r.done;
  }
  EXPECT_LE(total, 100.0);
}

TEST(Mechanics, PongScoresAreBounded) {
  auto env = arcade::make_game("Pong", 47);
  env->reset();
  util::Rng rng(2);
  double total = 0.0;
  bool done = false;
  while (!done) {
    const auto r = env->step(rng.uniform_int(env->num_actions()));
    total += r.reward;
    done = r.done;
  }
  EXPECT_GE(total, -50.0);
  EXPECT_LE(total, 21.0);
}

TEST(Mechanics, QbertPaintRewardsFirstVisitsOnly) {
  auto env = arcade::make_game("Qbert", 53);
  env->reset();
  // Move right then left repeatedly: after the first pass the same cells
  // give no reward (until the board resets).
  double first = env->step(4).reward;   // right: new cell
  double second = env->step(3).reward;  // left: back to painted cell
  EXPECT_GE(first, 0.0);
  EXPECT_LE(second, first + 1e-9);
}

// --------------------------------------------------------------- VecEnv ---

TEST(VecEnv, BatchesObservations) {
  arcade::VecEnv vec("Catch", 4, 100);
  const Tensor obs = vec.reset();
  EXPECT_EQ(obs.shape(), tensor::Shape::nchw(4, 3, 12, 12));
  EXPECT_EQ(vec.num_envs(), 4);
  EXPECT_EQ(vec.num_actions(), 3);
}

TEST(VecEnv, StepRequiresActionPerEnv) {
  arcade::VecEnv vec("Catch", 3, 100);
  vec.reset();
  EXPECT_THROW(vec.step({0, 1}), std::runtime_error);
}

TEST(VecEnv, AutoResetsAndCollectsScores) {
  arcade::VecEnv vec("Catch", 2, 100);
  vec.reset();
  util::Rng rng(4);
  std::int64_t steps = 0;
  while (vec.episodes_completed() < 4 && steps < 5000) {
    vec.step({rng.uniform_int(3), rng.uniform_int(3)});
    ++steps;
  }
  EXPECT_GE(vec.episodes_completed(), 4);
  const auto scores = vec.drain_episode_scores();
  EXPECT_GE(scores.size(), 4u);
  EXPECT_TRUE(vec.drain_episode_scores().empty());  // drained
}

TEST(VecEnv, SmallBatchStaysSerialOnParallelPool) {
  // Regression for the committed vecenv_step baseline, where fanning a
  // 32-env step over 8 threads was ~3x SLOWER than serial: batches below
  // the min-work threshold must run inline even on a multi-thread pool.
  util::ThreadPool::set_global_threads(4);
  auto& pool = util::ThreadPool::global();
  const std::int64_t parallel_before = pool.regions_parallel();
  const std::int64_t inline_before = pool.regions_inline();
  arcade::VecEnv vec("Catch", 32, 7);
  vec.reset();
  vec.step(std::vector<int>(32, 1));
  EXPECT_EQ(pool.regions_parallel(), parallel_before);
  EXPECT_EQ(pool.regions_inline(), inline_before + 2);

  // A batch at the threshold still fans out.
  arcade::VecEnv big("Catch", 64, 7);
  big.reset();
  EXPECT_GT(pool.regions_parallel(), parallel_before);
  util::ThreadPool::set_global_threads(1);
}

TEST(VecEnv, EnvsEvolveIndependently) {
  arcade::VecEnv vec("Breakout", 4, 200);
  Tensor obs = vec.reset();
  for (int t = 0; t < 30; ++t) {
    obs = vec.step({0, 0, 0, 0}).obs;
  }
  // Ball positions (plane 1) should differ across at least one env pair.
  bool differ = false;
  const std::int64_t frame = obs.numel() / 4;
  for (int e = 1; e < 4 && !differ; ++e) {
    for (std::int64_t i = 0; i < frame; ++i) {
      if (obs[i] != obs[e * frame + i]) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace a3cs
