// Kill-and-resume fault injection (the checkpoint subsystem's correctness
// bar): a co-search run that is hard-killed mid-iteration and resumed in a
// FRESH process must produce exactly the same final theta/alpha/phi state —
// and the same per-iteration trace — as an uninterrupted run, at any thread
// count. Also covers recovery when the newest checkpoint is truncated (torn
// write) and the SIGTERM -> final checkpoint -> clean exit path.
//
// The child binary is tests/ckpt_run_main.cc; its path arrives via the
// CKPT_RUN_BIN compile definition.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/atomic_file.h"

namespace a3cs {
namespace {

namespace fs = std::filesystem;

constexpr long long kTotalIters = 24;
constexpr long long kDieAt = 12;

std::string temp_dir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("a3cs_resume_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Runs the helper with the given env assignments; returns its exit code.
int run_helper(const std::string& env, long long total_iters,
               const std::string& ckpt_dir, const std::string& out_file,
               bool resume, long long die_at, long long sigterm_at) {
  std::ostringstream cmd;
  cmd << "env " << env << " " << CKPT_RUN_BIN << " " << total_iters << " "
      << ckpt_dir << " " << out_file << " " << (resume ? 1 : 0) << " "
      << die_at << " " << sigterm_at << " >/dev/null 2>&1";
  const int status = std::system(cmd.str().c_str());
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
}

// The per-iteration trace events with the wall-clock field stripped, keyed
// by iteration.
std::vector<std::pair<long long, std::string>> iter_events(
    const std::string& trace_path) {
  std::vector<std::pair<long long, std::string>> out;
  std::ifstream in(trace_path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"cosearch_iter\"") == std::string::npos) continue;
    const std::size_t type_at = line.find("\"type\"");
    std::string stripped = "{";
    stripped.append(line, type_at, std::string::npos);
    const std::size_t iter_at = line.find("\"iter\":");
    long long iter = -1;
    if (iter_at != std::string::npos) {
      iter = std::atoll(line.c_str() + iter_at + 7);
    }
    out.emplace_back(iter, stripped);
  }
  return out;
}

void expect_resume_bit_exact(const std::string& threads_env) {
  const std::string ref_dir = temp_dir("ref_" + threads_env);
  const std::string crash_dir = temp_dir("crash_" + threads_env);
  const std::string ref_out = ref_dir + "/final.bin";
  const std::string crash_out = crash_dir + "/final.bin";
  const std::string ref_trace = ref_dir + "/trace.jsonl";
  const std::string resume_trace = crash_dir + "/trace.jsonl";
  const std::string env = "A3CS_THREADS=" + threads_env;

  // Uninterrupted reference (checkpointing on: writes must not perturb).
  ASSERT_EQ(run_helper(env + " A3CS_TRACE_PATH=" + ref_trace, kTotalIters,
                       ref_dir + "/ckpts", ref_out, false, 0, 0),
            0);
  // Crash mid-run: the helper _Exit(17)s inside the iteration-kDieAt
  // callback, right after that iteration's checkpoint hit disk.
  ASSERT_EQ(run_helper(env, kTotalIters, crash_dir + "/ckpts", "-", false,
                       kDieAt, 0),
            17);
  // Resume in a fresh process and finish the budget.
  ASSERT_EQ(run_helper(env + " A3CS_TRACE_PATH=" + resume_trace, kTotalIters,
                       crash_dir + "/ckpts", crash_out, true, 0, 0),
            0);

  // Final state must be bit-identical to the uninterrupted run.
  const std::string ref_bytes = util::read_file_bytes(ref_out);
  const std::string res_bytes = util::read_file_bytes(crash_out);
  ASSERT_FALSE(ref_bytes.empty());
  EXPECT_EQ(ref_bytes, res_bytes)
      << "crash+resume diverged from the uninterrupted run";

  // The resumed process's per-iteration events (losses, rewards, alpha
  // entropies, hw stats) must textually match the reference's for the same
  // iterations — %.12g float formatting makes this a bit-exactness check.
  const auto ref_events = iter_events(ref_trace);
  const auto res_events = iter_events(resume_trace);
  ASSERT_FALSE(res_events.empty());
  int compared = 0;
  for (const auto& [iter, line] : res_events) {
    for (const auto& [riter, rline] : ref_events) {
      if (riter != iter) continue;
      EXPECT_EQ(line, rline) << "trace diverged at iteration " << iter;
      ++compared;
    }
  }
  EXPECT_GE(compared, static_cast<int>(kTotalIters - kDieAt));

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
}

TEST(CkptResume, KillAndResumeBitExactSingleThread) {
  expect_resume_bit_exact("1");
}

TEST(CkptResume, KillAndResumeBitExactFourThreads) {
  expect_resume_bit_exact("4");
}

TEST(CkptResume, TruncatedTipFallsBackToPreviousCheckpoint) {
  const std::string ref_dir = temp_dir("trunc_ref");
  const std::string crash_dir = temp_dir("trunc_crash");
  const std::string ref_out = ref_dir + "/final.bin";
  const std::string crash_out = crash_dir + "/final.bin";
  const std::string env = "A3CS_THREADS=1";

  ASSERT_EQ(run_helper(env, kTotalIters, ref_dir + "/ckpts", ref_out, false,
                       0, 0),
            0);
  ASSERT_EQ(run_helper(env, kTotalIters, crash_dir + "/ckpts", "-", false,
                       kDieAt, 0),
            17);

  // Tear the newest checkpoint in half, as an interrupted write would.
  std::string tip;
  for (const auto& e : fs::directory_iterator(crash_dir + "/ckpts")) {
    const std::string p = e.path().string();
    if (tip.empty() || p > tip) tip = p;
  }
  ASSERT_FALSE(tip.empty());
  const std::string bytes = util::read_file_bytes(tip);
  std::ofstream(tip, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);

  // Resume must fall back to the previous intact checkpoint, redo the lost
  // iteration deterministically, and still land bit-identical.
  ASSERT_EQ(run_helper(env, kTotalIters, crash_dir + "/ckpts", crash_out,
                       true, 0, 0),
            0);
  EXPECT_EQ(util::read_file_bytes(ref_out), util::read_file_bytes(crash_out))
      << "fallback resume diverged from the uninterrupted run";

  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
}

TEST(CkptResume, SigtermCheckpointsThenResumesBitExact) {
  const std::string ref_dir = temp_dir("term_ref");
  const std::string stop_dir = temp_dir("term_stop");
  const std::string ref_out = ref_dir + "/final.bin";
  const std::string stop_out = stop_dir + "/final.bin";
  const std::string env = "A3CS_THREADS=1";

  ASSERT_EQ(run_helper(env, kTotalIters, ref_dir + "/ckpts", ref_out, false,
                       0, 0),
            0);
  // SIGTERM mid-run: the engine writes a final checkpoint and returns
  // cleanly (exit 0), well short of the frame budget.
  ASSERT_EQ(run_helper(env, kTotalIters, stop_dir + "/ckpts", "-", false, 0,
                       kDieAt),
            0);
  ASSERT_FALSE(fs::is_empty(stop_dir + "/ckpts"));
  ASSERT_EQ(run_helper(env, kTotalIters, stop_dir + "/ckpts", stop_out, true,
                       0, 0),
            0);
  EXPECT_EQ(util::read_file_bytes(ref_out), util::read_file_bytes(stop_out))
      << "signal-stop + resume diverged from the uninterrupted run";

  fs::remove_all(ref_dir);
  fs::remove_all(stop_dir);
}

}  // namespace
}  // namespace a3cs
