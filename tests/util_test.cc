#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/config.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace a3cs {
namespace {

// ----------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  util::Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRange) {
  util::Rng rng(3);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(7))];
  for (int c : counts) EXPECT_GT(c, 700);  // ~1000 each
}

TEST(Rng, NormalMoments) {
  util::Rng rng(5);
  util::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  util::Rng rng(5);
  util::RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(3.0, 0.5));
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
  EXPECT_NEAR(s.stddev(), 0.5, 0.02);
}

TEST(Rng, GumbelMeanIsEulerGamma) {
  util::Rng rng(9);
  util::RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gumbel());
  EXPECT_NEAR(s.mean(), 0.5772, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  util::Rng rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  util::Rng rng(17);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.categorical(w))];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Rng, CategoricalRejectsInvalid) {
  util::Rng rng(1);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependent) {
  util::Rng parent(21);
  util::Rng c1 = parent.split();
  util::Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// --------------------------------------------------------------- Stats ----

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  util::RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), util::mean(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), util::stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  util::RunningStats s;
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(util::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(util::stddev({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(util::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(util::median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(util::median({5.0}), 5.0);
}

TEST(Ema, ConvergesToConstant) {
  util::Ema ema(0.25);
  EXPECT_FALSE(ema.initialized());
  for (int i = 0; i < 100; ++i) ema.update(2.0);
  EXPECT_NEAR(ema.value(), 2.0, 1e-9);
}

TEST(Ema, FirstValueInitializes) {
  util::Ema ema(0.1);
  EXPECT_DOUBLE_EQ(ema.update(5.0), 5.0);
  EXPECT_TRUE(ema.initialized());
}

// ----------------------------------------------------------------- Csv ----

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(util::CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(util::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(util::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(util::CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream oss;
  util::CsvWriter csv(oss, {"a", "b"});
  csv.row({"1", "x,y"});
  EXPECT_EQ(oss.str(), "a,b\n1,\"x,y\"\n");
}

TEST(Csv, RejectsWrongWidth) {
  std::ostringstream oss;
  util::CsvWriter csv(oss, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::runtime_error);
}

TEST(Csv, RowEscapesCommaCells) {
  std::ostringstream oss;
  util::CsvWriter csv(oss, {"name", "value"});
  csv.row({"a,b,c", "1"});
  EXPECT_EQ(oss.str(), "name,value\n\"a,b,c\",1\n");
}

TEST(Csv, RowEscapesQuoteCells) {
  std::ostringstream oss;
  util::CsvWriter csv(oss, {"name", "value"});
  csv.row({"he said \"hi\"", "2"});
  EXPECT_EQ(oss.str(), "name,value\n\"he said \"\"hi\"\"\",2\n");
}

TEST(Csv, RowEscapesNewlineCells) {
  std::ostringstream oss;
  util::CsvWriter csv(oss, {"name", "value"});
  csv.row({"two\nlines", "3"});
  EXPECT_EQ(oss.str(), "name,value\n\"two\nlines\",3\n");
}

TEST(Csv, HeaderCellsAreEscapedToo) {
  std::ostringstream oss;
  util::CsvWriter csv(oss, {"plain", "with,comma"});
  EXPECT_EQ(oss.str(), "plain,\"with,comma\"\n");
}

TEST(Csv, MixedSpecialsInOneRow) {
  std::ostringstream oss;
  util::CsvWriter csv(oss, {"a", "b", "c"});
  csv.row({"x,y", "q\"z", "n\nm"});
  EXPECT_EQ(oss.str(), "a,b,c\n\"x,y\",\"q\"\"z\",\"n\nm\"\n");
}

// --------------------------------------------------------------- Table ----

TEST(Table, AlignsColumns) {
  util::TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  std::ostringstream oss;
  t.print(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 2     |"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(util::TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(util::TextTable::num(12345.6), "12346");
  EXPECT_EQ(util::TextTable::num(0.0), "0.0");
}

TEST(Table, RejectsWrongWidth) {
  util::TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::runtime_error);
}

// -------------------------------------------------------------- Config ----

TEST(Config, EnvIntParsesAndFallsBack) {
  ::setenv("A3CS_TEST_INT", "123", 1);
  EXPECT_EQ(util::env_int("A3CS_TEST_INT", 7), 123);
  EXPECT_EQ(util::env_int("A3CS_TEST_MISSING", 7), 7);
  ::setenv("A3CS_TEST_INT", "garbage", 1);
  EXPECT_EQ(util::env_int("A3CS_TEST_INT", 7), 7);
  ::unsetenv("A3CS_TEST_INT");
}

TEST(Config, EnvDoubleParsesAndFallsBack) {
  ::setenv("A3CS_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(util::env_double("A3CS_TEST_DBL", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(util::env_double("A3CS_TEST_MISSING", 1.0), 1.0);
  ::unsetenv("A3CS_TEST_DBL");
}

TEST(Config, EnvStringFallsBack) {
  EXPECT_EQ(util::env_string("A3CS_TEST_MISSING", "dflt"), "dflt");
}

TEST(Config, ScaledStepsRespectsMinimum) {
  EXPECT_GE(util::scaled_steps(1000, 64), 64);
  EXPECT_GE(util::scaled_steps(1, 64), 64);
}

// ------------------------------------------------------------- Logging ----

TEST(Logging, CheckMacroThrowsWithMessage) {
  try {
    A3CS_CHECK(1 == 2, "impossible");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("impossible"), std::string::npos);
  }
}

TEST(Logging, CheckMacroPassesSilently) {
  A3CS_CHECK(true, "fine");  // must not throw
}

TEST(Logging, Iso8601NowShape) {
  const std::string ts = util::iso8601_now();
  ASSERT_EQ(ts.size(), 23u);  // YYYY-MM-DDTHH:MM:SS.mmm
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts[19], '.');
  for (const std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u,
                              15u, 17u, 18u, 20u, 21u, 22u}) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(ts[i]))) << i;
  }
}

}  // namespace
}  // namespace a3cs
