#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace a3cs {
namespace {

// A scratch file path that is removed when the fixture dies.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------------------- Metrics ----

TEST(Metrics, CounterSingleThread) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, ConcurrentCounterIncrements) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  // Raw threads on purpose: these tests hammer cross-thread atomicity of the
  // metrics/trace primitives themselves. A3CS_LINT(conc-raw-thread)
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(Metrics, GaugeSetAndConcurrentAdd) {
  obs::Gauge g;
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(0.0);
  // Raw threads on purpose: these tests hammer cross-thread atomicity of the
  // metrics/trace primitives themselves. A3CS_LINT(conc-raw-thread)
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(0.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 2000.0);
}

TEST(Metrics, HistogramBucketEdges) {
  obs::Histogram h({1.0, 2.0, 5.0});
  // A sample on a bound lands in that bound's bucket (value <= bound).
  h.record(0.5);   // bucket 0 (<= 1)
  h.record(1.0);   // bucket 0 (edge: exactly on the bound)
  h.record(1.001); // bucket 1 (<= 2)
  h.record(2.0);   // bucket 1 (edge)
  h.record(5.0);   // bucket 2 (edge)
  h.record(5.1);   // overflow
  h.record(1e9);   // overflow
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 2);
  EXPECT_EQ(h.total_count(), 7);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.1 + 1e9, 1e-3);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  const std::vector<double> empty;
  const std::vector<double> unsorted = {2.0, 1.0};
  EXPECT_THROW(obs::Histogram h(empty), std::runtime_error);
  EXPECT_THROW(obs::Histogram h(unsorted), std::runtime_error);
}

TEST(Metrics, RegistryHandsOutStableHandles) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("test.counter");
  obs::Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.snapshot().counters.at("test.counter"), 3);
}

TEST(Metrics, RegistryConcurrentRegistrationAndUpdate) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  // Raw threads on purpose: these tests hammer cross-thread atomicity of the
  // metrics/trace primitives themselves. A3CS_LINT(conc-raw-thread)
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Every thread races registration of the same names.
      obs::Counter& c = reg.counter("shared");
      obs::Histogram& h = reg.histogram("lat", {1.0, 10.0});
      for (int i = 0; i < kIncrements; ++i) {
        c.inc();
        h.record(static_cast<double>(i % 20));
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("shared"),
            static_cast<std::int64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snap.histograms.at("lat").total,
            static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(Metrics, ResetZeroesEverything) {
  obs::MetricsRegistry reg;
  reg.counter("c").inc(5);
  reg.gauge("g").set(2.0);
  reg.histogram("h", {1.0}).record(0.5);
  reg.reset();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 0.0);
  EXPECT_EQ(snap.histograms.at("h").total, 0);
}

// --------------------------------------------------------------- Trace ----

TEST(Trace, JsonlRoundTrip) {
  TempFile tmp("obs_trace_roundtrip.jsonl");
  {
    obs::TraceWriter writer(tmp.path(), /*flush_every=*/1);
    writer.event("iter")
        .kv("frames", std::int64_t{640})
        .kv("loss", 1.25)
        .kv("game", "Pong")
        .kv("feasible", true)
        .kv("note", "quote \" comma , line\nbreak\ttab \\ done");
    writer.event("end").kv("nan_is_null", std::nan(""));
  }
  const auto events = obs::parse_jsonl_file(tmp.path());
  ASSERT_EQ(events.size(), 3u);  // trace_start + 2

  EXPECT_EQ(events[0].string_or("type", ""), "trace_start");
  EXPECT_FALSE(events[0].string_or("wall_time", "").empty());

  const obs::JsonValue& iter = events[1];
  EXPECT_EQ(iter.string_or("type", ""), "iter");
  EXPECT_DOUBLE_EQ(iter.number_or("frames", -1), 640.0);
  EXPECT_DOUBLE_EQ(iter.number_or("loss", -1), 1.25);
  EXPECT_EQ(iter.string_or("game", ""), "Pong");
  EXPECT_TRUE(iter.find("feasible")->as_bool());
  EXPECT_EQ(iter.string_or("note", ""),
            "quote \" comma , line\nbreak\ttab \\ done");
  // Monotonic timestamps.
  EXPECT_GE(iter.number_or("ts_ms", -1), events[0].number_or("ts_ms", 0));

  // Non-finite numbers are serialized as null, keeping the line valid JSON.
  EXPECT_TRUE(events[2].find("nan_is_null")->is_null());
}

TEST(Trace, EveryLineIsWellFormedUnderConcurrency) {
  TempFile tmp("obs_trace_concurrent.jsonl");
  constexpr int kThreads = 4;
  constexpr int kEvents = 500;
  {
    obs::TraceWriter writer(tmp.path(), /*flush_every=*/16);
    // Raw threads on purpose: these tests hammer cross-thread atomicity of the
    // metrics/trace primitives themselves. A3CS_LINT(conc-raw-thread)
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&writer, t] {
        for (int i = 0; i < kEvents; ++i) {
          writer.event("ev").kv("thread", t).kv("i", i).kv("x", 0.5 * i);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(writer.events_written(), kThreads * kEvents + 1);
  }
  // The parser throws on any malformed line => interleaving would fail here.
  const auto events = obs::parse_jsonl_file(tmp.path());
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kEvents + 1);
}

TEST(Trace, GlobalSessionGatesTraceEvents) {
  EXPECT_EQ(obs::global_trace(), nullptr);
  obs::trace_event("dropped").kv("x", 1);  // inert without a session

  TempFile tmp("obs_trace_session.jsonl");
  obs::ObsConfig cfg;
  cfg.trace_enabled = true;
  cfg.trace_path = tmp.path();
  {
    obs::TraceSession session(cfg);
    ASSERT_TRUE(session.active());
    EXPECT_NE(obs::global_trace(), nullptr);
    obs::trace_event("kept").kv("x", 2);
    {
      // A nested session must not steal or close the outer writer.
      obs::TraceSession inner(cfg);
      EXPECT_FALSE(inner.active());
      EXPECT_EQ(obs::global_trace(), session.writer());
    }
    EXPECT_NE(obs::global_trace(), nullptr);
  }
  EXPECT_EQ(obs::global_trace(), nullptr);

  const auto events = obs::parse_jsonl_file(tmp.path());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].string_or("type", ""), "kept");
}

TEST(Trace, DisabledConfigOpensNothing) {
  obs::ObsConfig cfg;  // trace_enabled = false
  obs::TraceSession session(cfg);
  EXPECT_FALSE(session.active());
  EXPECT_EQ(obs::global_trace(), nullptr);
}

// ---------------------------------------------------------------- Json ----

TEST(Json, ParsesNestedDocument) {
  const obs::JsonValue v = obs::JsonValue::parse(
      R"({"a": [1, 2.5, "x", true, null], "b": {"c": -3e2}})");
  const auto& arr = v.find("a")->as_array();
  ASSERT_EQ(arr.size(), 5u);
  EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.5);
  EXPECT_EQ(arr[2].as_string(), "x");
  EXPECT_TRUE(arr[3].as_bool());
  EXPECT_TRUE(arr[4].is_null());
  EXPECT_DOUBLE_EQ(v.find("b")->number_or("c", 0.0), -300.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(obs::JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::JsonValue::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(obs::JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(obs::JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(obs::JsonValue::parse("nul"), std::runtime_error);
}

// ------------------------------------------------------------- Profile ----

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Profiler::global().reset();
    obs::Profiler::set_enabled(true);
  }
  void TearDown() override {
    obs::Profiler::set_enabled(false);
    obs::Profiler::global().reset();
  }
};

TEST_F(ProfilerTest, BuildsHierarchyByNesting) {
  for (int i = 0; i < 3; ++i) {
    A3CS_PROF_SCOPE("outer");
    { A3CS_PROF_SCOPE("inner"); }
    { A3CS_PROF_SCOPE("inner"); }
  }
  const auto nodes = obs::Profiler::global().flatten();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0].path, "outer");
  EXPECT_EQ(nodes[0].depth, 0);
  EXPECT_EQ(nodes[0].calls, 3);
  EXPECT_EQ(nodes[1].path, "outer/inner");
  EXPECT_EQ(nodes[1].depth, 1);
  EXPECT_EQ(nodes[1].calls, 6);
  // Children cannot exceed their parent's wall time.
  EXPECT_LE(nodes[1].total_ns, nodes[0].total_ns);
  EXPECT_GE(nodes[1].fraction_of_parent, 0.0);
  EXPECT_LE(nodes[1].fraction_of_parent, 1.0);
}

TEST_F(ProfilerTest, SameNameUnderDifferentParentsStaysSeparate) {
  {
    A3CS_PROF_SCOPE("a");
    A3CS_PROF_SCOPE("shared");
  }
  {
    A3CS_PROF_SCOPE("b");
    A3CS_PROF_SCOPE("shared");
  }
  const auto nodes = obs::Profiler::global().flatten();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0].path, "a");
  EXPECT_EQ(nodes[1].path, "a/shared");
  EXPECT_EQ(nodes[2].path, "b");
  EXPECT_EQ(nodes[3].path, "b/shared");
}

TEST_F(ProfilerTest, DisabledScopesRecordNothing) {
  obs::Profiler::set_enabled(false);
  { A3CS_PROF_SCOPE("ghost"); }
  EXPECT_TRUE(obs::Profiler::global().flatten().empty());
}

TEST_F(ProfilerTest, ConcurrentThreadsMergeIntoSharedNodes) {
  // Raw threads on purpose: these tests hammer cross-thread atomicity of the
  // metrics/trace primitives themselves. A3CS_LINT(conc-raw-thread)
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        A3CS_PROF_SCOPE("worker");
        A3CS_PROF_SCOPE("step");
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto nodes = obs::Profiler::global().flatten();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0].path, "worker");
  EXPECT_EQ(nodes[0].calls, 400);
  EXPECT_EQ(nodes[1].path, "worker/step");
  EXPECT_EQ(nodes[1].calls, 400);
}

TEST_F(ProfilerTest, SummaryAndTraceEmission) {
  {
    A3CS_PROF_SCOPE("phase");
    A3CS_PROF_SCOPE("sub");
  }
  std::ostringstream oss;
  obs::Profiler::global().print_summary(oss);
  EXPECT_NE(oss.str().find("phase"), std::string::npos);
  EXPECT_NE(oss.str().find("sub"), std::string::npos);

  TempFile tmp("obs_profile_trace.jsonl");
  {
    obs::TraceWriter writer(tmp.path(), 1);
    obs::Profiler::global().emit_to_trace(writer);
  }
  const auto events = obs::parse_jsonl_file(tmp.path());
  ASSERT_EQ(events.size(), 3u);  // trace_start + 2 profile nodes
  EXPECT_EQ(events[1].string_or("type", ""), "profile");
  EXPECT_EQ(events[1].string_or("path", ""), "phase");
  EXPECT_EQ(events[2].string_or("path", ""), "phase/sub");
}

// -------------------------------------------------------------- Config ----

TEST(ObsConfig, EnvOverridesWin) {
  ::setenv("A3CS_TRACE_PATH", "/tmp/override.jsonl", 1);
  ::setenv("A3CS_TRACE_FLUSH_EVERY", "7", 1);
  ::setenv("A3CS_PROFILE", "1", 1);
  obs::ObsConfig cfg;
  const obs::ObsConfig resolved = cfg.with_env_overrides();
  EXPECT_TRUE(resolved.trace_enabled);
  EXPECT_EQ(resolved.trace_path, "/tmp/override.jsonl");
  EXPECT_EQ(resolved.trace_flush_every, 7);
  EXPECT_TRUE(resolved.profile_enabled);
  ::unsetenv("A3CS_TRACE_PATH");
  ::unsetenv("A3CS_TRACE_FLUSH_EVERY");
  ::unsetenv("A3CS_PROFILE");
}

TEST(ObsConfig, TraceEnvCanForceOff) {
  ::setenv("A3CS_TRACE", "0", 1);
  obs::ObsConfig cfg;
  cfg.trace_enabled = true;
  cfg.trace_path = "x.jsonl";
  EXPECT_FALSE(cfg.with_env_overrides().trace_enabled);
  ::unsetenv("A3CS_TRACE");
}

TEST(ObsConfig, EnableWithoutPathGetsDefaultPath) {
  ::setenv("A3CS_TRACE", "1", 1);
  obs::ObsConfig cfg;
  const obs::ObsConfig resolved = cfg.with_env_overrides();
  EXPECT_TRUE(resolved.trace_enabled);
  EXPECT_EQ(resolved.trace_path, "a3cs_trace.jsonl");
  ::unsetenv("A3CS_TRACE");
}

TEST(ObsConfig, DefaultsAreQuiet) {
  const obs::ObsConfig resolved = obs::ObsConfig{}.with_env_overrides();
  EXPECT_FALSE(resolved.trace_enabled);
  EXPECT_FALSE(resolved.profile_enabled);
}

}  // namespace
}  // namespace a3cs
