#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/config_io.h"
#include "accel/predictor.h"
#include "accel/space.h"
#include "core/result_io.h"
#include "nn/zoo.h"
#include "tensor/serialize.h"

namespace a3cs {
namespace {

using accel::AcceleratorConfig;
using accel::AcceleratorSpace;

// ------------------------------------------------------------ config IO ---

class ConfigIoFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ConfigIoFuzzTest, RandomConfigsRoundTrip) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 11);
  const int chunks = 1 + rng.uniform_int(6);
  const int groups = 1 + rng.uniform_int(20);
  AcceleratorSpace space(chunks, groups);
  const AcceleratorConfig cfg = space.decode(space.random_choices(rng));

  const AcceleratorConfig back = accel::decode_config(accel::encode_config(cfg));
  ASSERT_EQ(back.num_chunks(), cfg.num_chunks());
  ASSERT_EQ(back.group_to_chunk, cfg.group_to_chunk);
  for (int c = 0; c < cfg.num_chunks(); ++c) {
    const auto& a = cfg.chunks[static_cast<std::size_t>(c)];
    const auto& b = back.chunks[static_cast<std::size_t>(c)];
    EXPECT_EQ(a.pe_rows, b.pe_rows);
    EXPECT_EQ(a.pe_cols, b.pe_cols);
    EXPECT_EQ(a.noc, b.noc);
    EXPECT_EQ(a.dataflow, b.dataflow);
    EXPECT_EQ(a.tile_oc, b.tile_oc);
    EXPECT_EQ(a.tile_ic, b.tile_ic);
    EXPECT_NEAR(a.split.input, b.split.input, 1e-6);
    EXPECT_NEAR(a.split.weight, b.split.weight, 1e-6);
    EXPECT_NEAR(a.split.output, b.split.output, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ConfigIoFuzzTest, ::testing::Range(0, 12));

TEST(ConfigIo, RoundTripPreservesPredictorEvaluation) {
  util::Rng rng(99);
  const auto specs = nn::zoo_model_specs("ResNet-14", nn::ObsSpec{3, 12, 12}, 4);
  AcceleratorSpace space(4, nn::num_groups(specs));
  const auto cfg = space.decode(space.random_choices(rng));
  const auto back = accel::decode_config(accel::encode_config(cfg));
  accel::Predictor pred;
  EXPECT_DOUBLE_EQ(pred.evaluate(specs, cfg).ii_cycles,
                   pred.evaluate(specs, back).ii_cycles);
  EXPECT_DOUBLE_EQ(pred.evaluate(specs, cfg).energy_nj,
                   pred.evaluate(specs, back).energy_nj);
}

TEST(ConfigIo, FileRoundTrip) {
  util::Rng rng(7);
  AcceleratorSpace space(2, 3);
  const auto cfg = space.decode(space.random_choices(rng));
  const std::string path = ::testing::TempDir() + "/a3cs_accel.cfg";
  accel::save_config(path, cfg);
  const auto back = accel::load_config(path);
  EXPECT_EQ(accel::encode_config(back), accel::encode_config(cfg));
  std::filesystem::remove(path);
}

TEST(ConfigIo, RejectsMalformedInput) {
  EXPECT_THROW(accel::decode_config(""), std::runtime_error);
  EXPECT_THROW(accel::decode_config("chunks=1;alloc=0"), std::runtime_error);
  EXPECT_THROW(accel::decode_config("chunks=2;alloc=0;chunk=4x4"),
               std::runtime_error);
  EXPECT_THROW(
      accel::decode_config("chunks=1;alloc=5;chunk=4x4,noc=0,df=0,toc=8,"
                           "tic=8,split=0.3:0.3:0.4"),
      std::runtime_error);
  EXPECT_THROW(accel::decode_config("bogus=1"), std::runtime_error);
}

// A valid single-chunk encoding whose fields the tests below corrupt one at
// a time.
std::string valid_chunk_encoding() {
  util::Rng rng(21);
  AcceleratorSpace space(1, 2);
  return accel::encode_config(space.decode(space.random_choices(rng)));
}

TEST(ConfigIo, RejectsOutOfRangeAndTruncatedFields) {
  const std::string good = valid_chunk_encoding();
  ASSERT_NO_THROW(accel::decode_config(good));

  // stoi/stod throw std::invalid_argument on fully non-numeric tokens, so
  // accept any exception type — never a silently parsed config.
  auto corrupt = [&](const std::string& field, const std::string& repl) {
    const std::size_t at = good.find(field);
    ASSERT_NE(at, std::string::npos) << field;
    std::string bad = good;
    bad.replace(at, field.size(), repl);
    EXPECT_ANY_THROW(accel::decode_config(bad)) << repl;
  };
  corrupt("noc=", "noc=9,x=");       // out-of-range NoC id
  corrupt("df=", "df=7,x=");         // out-of-range dataflow id
  corrupt("split=", "split=0.5:");   // split with too few parts
  corrupt("chunks=", "chunks=zz,");  // non-numeric integer
  corrupt("toc=", "weird=8,x=");     // unknown per-chunk field

  // Strings cut off mid-token (as a torn write would leave them) must not
  // parse as smaller valid configs.
  EXPECT_ANY_THROW(accel::decode_config("chunks=1;alloc="));
  EXPECT_ANY_THROW(accel::decode_config("chunks=1;alloc=0;chunk=4x"));
  EXPECT_ANY_THROW(accel::decode_config("chunks=1;alloc=0;chunk=4x4,noc="));
}

// ------------------------------------------------------- tensor formats ---

TEST(TensorFormat, RejectsUnknownVersionAndBadMagic) {
  const tensor::Tensor t({2, 3}, 0.5f);
  std::ostringstream oss;
  tensor::write_tensor(oss, t);
  const std::string good = oss.str();

  {  // Flip the version byte (offset 4, right after the "A3CT" magic).
    std::string bad = good;
    bad[4] = 2;
    std::istringstream in(bad);
    try {
      tensor::read_tensor(in);
      FAIL() << "unknown A3CT version accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
  }
  {  // Corrupt the magic.
    std::string bad = good;
    bad[0] = 'X';
    std::istringstream in(bad);
    EXPECT_THROW(tensor::read_tensor(in), std::runtime_error);
  }
  {  // Truncate inside the payload.
    std::istringstream in(good.substr(0, good.size() - 3));
    EXPECT_THROW(tensor::read_tensor(in), std::runtime_error);
  }
}

TEST(TensorFormat, NamedContainerRejectsUnknownVersion) {
  std::ostringstream oss;
  tensor::write_tensors(oss, {{"w", tensor::Tensor({2}, 1.0f)},
                              {"b", tensor::Tensor({1}, 2.0f)}});
  std::string bad = oss.str();
  bad[4] = 9;  // version byte follows the "A3CF" magic
  std::istringstream in(bad);
  try {
    tensor::read_tensors(in);
    FAIL() << "unknown A3CF version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

// ------------------------------------------------------------ result IO ---

TEST(ResultIo, RoundTrip) {
  core::SavedResult result;
  result.game = "Breakout";
  result.arch = nas::DerivedArch::from_string("conv3-skip-ir5x3");
  util::Rng rng(3);
  AcceleratorSpace space(2, 5);
  result.accelerator = space.decode(space.random_choices(rng));
  result.test_score = 123.5;
  result.fps = 45678.0;

  const std::string path = ::testing::TempDir() + "/a3cs_result.txt";
  core::save_result(path, result);
  const auto back = core::load_result(path);
  EXPECT_EQ(back.game, "Breakout");
  EXPECT_EQ(back.arch.to_string(), "conv3-skip-ir5x3");
  EXPECT_EQ(accel::encode_config(back.accelerator),
            accel::encode_config(result.accelerator));
  EXPECT_DOUBLE_EQ(back.test_score, 123.5);
  EXPECT_DOUBLE_EQ(back.fps, 45678.0);
  std::filesystem::remove(path);
}

TEST(ResultIo, MissingFieldsRejected) {
  const std::string path = ::testing::TempDir() + "/a3cs_bad_result.txt";
  {
    std::ofstream out(path);
    out << "game=Pong\ntest_score=1\n";
  }
  EXPECT_THROW(core::load_result(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ResultIo, MissingFileRejected) {
  EXPECT_THROW(core::load_result("/nonexistent/res.txt"), std::runtime_error);
}

TEST(ResultIo, MalformedLinesRejected) {
  const std::string path = ::testing::TempDir() + "/a3cs_malformed_result.txt";
  const std::vector<std::string> bodies = {
      "game=Pong\nthis line has no equals sign\n",
      "game=Pong\nmystery_key=42\narch=conv3\n",
      "arch=not a real arch string !!\naccel=chunks=1;alloc=0\n",
  };
  for (const std::string& body : bodies) {
    {
      std::ofstream out(path);
      out << body;
    }
    EXPECT_THROW(core::load_result(path), std::runtime_error) << body;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace a3cs
