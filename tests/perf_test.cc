// Tests for the performance observability subsystem (src/obs/perf/):
// benchmark registry determinism under an injected fake clock, BENCH_*.json
// schema round-trips, the regression-diff verdicts behind tools/bench_report
// (including the real binary's exit codes), Chrome trace_events export
// well-formedness, per-kernel work counters, and the histogram reservoir's
// exact small-sample quantiles. The end-to-end case drives the real
// cosearch_full binary with A3CS_PROFILE_CHROME and schema-checks its trace,
// mirroring how ckpt_resume_test drives ckpt_run.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "obs/perf/bench.h"
#include "obs/perf/bench_json.h"
#include "obs/perf/chrome_trace.h"
#include "obs/perf/run_meta.h"
#include "obs/perf/work_counters.h"
#include "obs/profile.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace a3cs {
namespace {

using obs::perf::BenchDoc;
using obs::perf::BenchResult;
using obs::perf::BenchSuite;
using obs::perf::DiffRow;
using tensor::Shape;
using tensor::Tensor;

// A scratch file path that is removed when the fixture dies.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int run_command(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

// ------------------------------------------------------------ fake clock ----

// Advances 1ms per reading, so every measured sample is exactly 1.0 ms and
// registry output is a pure function of the sampling policy.
constexpr std::int64_t kFakeStepNs = 1'000'000;
std::int64_t g_fake_ns = 0;

std::int64_t fake_clock() {
  g_fake_ns += kFakeStepNs;
  return g_fake_ns;
}

// Installs the fake clock for one scope; restores steady_clock on exit.
class FakeClockScope {
 public:
  FakeClockScope() {
    g_fake_ns = 0;
    BenchSuite::set_clock_for_test(&fake_clock);
  }
  ~FakeClockScope() { BenchSuite::set_clock_for_test(nullptr); }
};

// Registered bodies for a local (non-global) suite. Fixed budget so repeats
// do not depend on the host.
void fixed_budget_bench(obs::perf::Bench& b) {
  obs::perf::BenchBudget budget;
  budget.warmup = 0;
  budget.min_repeats = 4;
  budget.max_repeats = 4;
  budget.min_total_ms = 0.0;
  b.config("unit").work(100, 200).items(10.0, "it/s").budget(budget).run(
      [] {});
}

// Two configs staged in reverse order: run_all must sort results.
void two_config_bench(obs::perf::Bench& b) {
  obs::perf::BenchBudget budget;
  budget.warmup = 0;
  budget.min_repeats = 1;
  budget.max_repeats = 1;
  budget.min_total_ms = 0.0;
  b.config("zeta").budget(budget).run([] {});
  b.config("alpha").budget(budget).run([] {});
}

obs::perf::RunMeta fixed_meta() {
  obs::perf::RunMeta meta;
  meta.git_sha = "deadbeef0000";
  meta.host = "testhost/x86_64/1c";
  meta.threads = 1;
  meta.scale = 1.0;
  meta.smoke = false;
  meta.wall_time = "2026-01-01T00:00:00.000";
  return meta;
}

BenchResult make_result(const std::string& name, const std::string& config,
                        int threads, double median_ms) {
  BenchResult r;
  r.name = name;
  r.config = config;
  r.threads = threads;
  r.repeats = 5;
  r.median_ms = median_ms;
  r.p10_ms = median_ms * 0.9;
  r.p90_ms = median_ms * 1.1;
  r.mean_ms = median_ms;
  r.steady = true;
  return r;
}

// ---------------------------------------------------------- bench registry --

TEST(BenchRegistry, DeterministicUnderFakeClock) {
  FakeClockScope clock;
  BenchSuite suite;
  suite.add("fixed", &fixed_budget_bench);

  const std::vector<BenchResult> results = suite.run_all();
  ASSERT_EQ(results.size(), 1u);
  const BenchResult& r = results[0];
  EXPECT_EQ(r.name, "fixed");
  EXPECT_EQ(r.config, "unit");
  EXPECT_EQ(r.repeats, 4);
  EXPECT_DOUBLE_EQ(r.median_ms, 1.0);
  EXPECT_DOUBLE_EQ(r.p10_ms, 1.0);
  EXPECT_DOUBLE_EQ(r.p90_ms, 1.0);
  EXPECT_TRUE(r.steady);
  // 10 items / 1ms median = 10k items/s.
  EXPECT_DOUBLE_EQ(r.throughput, 10'000.0);
  EXPECT_EQ(r.throughput_unit, "it/s");
  EXPECT_EQ(r.flops, 100);
  EXPECT_EQ(r.bytes, 200);

  // Same suite, same clock schedule => byte-identical document.
  BenchDoc doc1;
  doc1.suite = "fake";
  doc1.meta = fixed_meta();
  doc1.results = results;

  g_fake_ns = 0;
  BenchDoc doc2 = doc1;
  doc2.results = suite.run_all();
  EXPECT_EQ(obs::perf::render_bench_json(doc1),
            obs::perf::render_bench_json(doc2));
}

TEST(BenchRegistry, ResultsSortedByNameConfigThreads) {
  FakeClockScope clock;
  BenchSuite suite;
  // Registered out of name order on purpose.
  suite.add("zz_fixed", &fixed_budget_bench);
  suite.add("aa_two", &two_config_bench);

  const std::vector<BenchResult> results = suite.run_all();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].name, "aa_two");
  EXPECT_EQ(results[0].config, "alpha");
  EXPECT_EQ(results[1].config, "zeta");
  EXPECT_EQ(results[2].name, "zz_fixed");
}

TEST(BenchRegistry, FilterSelectsBySubstring) {
  FakeClockScope clock;
  BenchSuite suite;
  suite.add("gemm", &fixed_budget_bench);
  suite.add("im2col", &fixed_budget_bench);
  const std::vector<BenchResult> results = suite.run_all("gem");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "gemm");
}

TEST(BenchRegistry, ExactQuantileInterpolates) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(obs::perf::exact_quantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::perf::exact_quantile(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(obs::perf::exact_quantile(sorted, 0.5), 2.5);
  // pos = 0.1 * 3 = 0.3 -> 1.0 + 0.3 * (2.0 - 1.0).
  EXPECT_DOUBLE_EQ(obs::perf::exact_quantile(sorted, 0.1), 1.3);
  EXPECT_DOUBLE_EQ(obs::perf::exact_quantile({7.5}, 0.9), 7.5);
  EXPECT_DOUBLE_EQ(obs::perf::exact_quantile({}, 0.5), 0.0);
}

// ------------------------------------------------------- bench env checks ---

TEST(BenchEnv, StrictValidation) {
  ASSERT_TRUE(obs::perf::validate_bench_env().empty());

  setenv("A3CS_SCALE", "abc", 1);
  auto errors = obs::perf::validate_bench_env();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("A3CS_SCALE"), std::string::npos);

  setenv("A3CS_SCALE", "0", 1);
  errors = obs::perf::validate_bench_env();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("must be > 0"), std::string::npos);

  // Trailing garbage must not silently truncate.
  setenv("A3CS_SCALE", "0.5x", 1);
  EXPECT_EQ(obs::perf::validate_bench_env().size(), 1u);

  setenv("A3CS_SCALE", "0.5", 1);
  setenv("A3CS_EVAL_EPISODES", "-3", 1);
  errors = obs::perf::validate_bench_env();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("A3CS_EVAL_EPISODES"), std::string::npos);

  setenv("A3CS_EVAL_EPISODES", "2", 1);
  EXPECT_TRUE(obs::perf::validate_bench_env().empty());

  unsetenv("A3CS_SCALE");
  unsetenv("A3CS_EVAL_EPISODES");
}

// ------------------------------------------------------------ JSON schema ---

TEST(BenchJson, RenderParseRoundTripIsByteStable) {
  BenchDoc doc;
  doc.suite = "kernels";
  doc.meta = fixed_meta();
  doc.results = {make_result("gemm", "256x256x256", 1, 33.5),
                 make_result("gemm", "256x256x256", 4, 11.25),
                 make_result("im2col", "16x32x28x28_k3", 1, 2.0)};
  doc.results[0].flops = 33'554'432;
  doc.results[0].bytes = 786'432;
  doc.results[0].throughput = 29.85;
  doc.results[0].throughput_unit = "calls/s";

  const std::string rendered = obs::perf::render_bench_json(doc);
  const BenchDoc parsed =
      obs::perf::parse_bench_doc(obs::JsonValue::parse(rendered));
  EXPECT_EQ(parsed.suite, "kernels");
  EXPECT_EQ(parsed.meta.git_sha, "deadbeef0000");
  ASSERT_EQ(parsed.results.size(), 3u);
  EXPECT_EQ(parsed.results[0].flops, 33'554'432);
  EXPECT_EQ(obs::perf::render_bench_json(parsed), rendered);
}

TEST(BenchJson, StrictParserRejectsSchemaViolations) {
  BenchDoc doc;
  doc.suite = "kernels";
  doc.meta = fixed_meta();
  doc.results = {make_result("gemm", "", 1, 1.0)};
  const std::string good = obs::perf::render_bench_json(doc);

  // Future schema version: refuse instead of diffing garbage.
  std::string bumped = good;
  const std::string version_key = "\"schema_version\":1";
  bumped.replace(bumped.find(version_key), version_key.size(),
                 "\"schema_version\":99");
  EXPECT_THROW(obs::perf::parse_bench_doc(obs::JsonValue::parse(bumped)),
               std::runtime_error);

  // Missing required result field.
  std::string no_median = good;
  const std::string median_key = "\"median_ms\"";
  no_median.replace(no_median.find(median_key), median_key.size(),
                    "\"median_renamed\"");
  EXPECT_THROW(obs::perf::parse_bench_doc(obs::JsonValue::parse(no_median)),
               std::runtime_error);

  // Missing meta block entirely.
  EXPECT_THROW(obs::perf::parse_bench_doc(obs::JsonValue::parse(
                   "{\"schema_version\":1,\"suite\":\"x\",\"results\":[]}")),
               std::runtime_error);
}

TEST(BenchJson, FileRoundTripAndMissingFileThrows) {
  TempFile tmp("/perf_bench_doc.json");
  BenchDoc doc;
  doc.suite = "predictor";
  doc.meta = fixed_meta();
  doc.results = {make_result("das_step", "samples1", 1, 4.0)};
  obs::perf::write_bench_file(tmp.path(), doc);
  const BenchDoc parsed = obs::perf::parse_bench_file(tmp.path());
  EXPECT_EQ(parsed.results[0].name, "das_step");
  EXPECT_THROW(obs::perf::parse_bench_file(tmp.path() + ".nope"),
               std::runtime_error);
}

// -------------------------------------------------------- regression diff ---

TEST(BenchDiff, VerdictsAndGate) {
  BenchDoc baseline;
  baseline.suite = "kernels";
  baseline.meta = fixed_meta();
  baseline.results = {make_result("flat", "", 1, 10.0),
                      make_result("slower", "", 1, 10.0),
                      make_result("faster", "", 1, 20.0),
                      make_result("dropped", "", 1, 5.0)};
  BenchDoc current = baseline;
  current.results = {make_result("flat", "", 1, 11.0),
                     make_result("slower", "", 1, 20.0),
                     make_result("faster", "", 1, 10.0),
                     make_result("added", "", 1, 5.0)};

  const std::vector<DiffRow> rows =
      obs::perf::diff_baselines(baseline, current, 25.0);
  ASSERT_EQ(rows.size(), 5u);  // union of keys, sorted
  EXPECT_EQ(rows[0].key, "added//t1");
  EXPECT_EQ(rows[0].verdict, DiffRow::Verdict::kNew);
  EXPECT_EQ(rows[1].key, "dropped//t1");
  EXPECT_EQ(rows[1].verdict, DiffRow::Verdict::kMissing);
  EXPECT_EQ(rows[2].key, "faster//t1");
  EXPECT_EQ(rows[2].verdict, DiffRow::Verdict::kImproved);
  EXPECT_EQ(rows[3].key, "flat//t1");
  EXPECT_EQ(rows[3].verdict, DiffRow::Verdict::kOk);
  EXPECT_DOUBLE_EQ(rows[3].delta_pct, 10.0);
  EXPECT_EQ(rows[4].key, "slower//t1");
  EXPECT_EQ(rows[4].verdict, DiffRow::Verdict::kRegressed);
  EXPECT_DOUBLE_EQ(rows[4].delta_pct, 100.0);

  EXPECT_TRUE(obs::perf::diff_has_failure(rows));
  // A dropped bench is only tolerated when the caller opts out.
  const std::vector<DiffRow> no_regress = {rows[0], rows[1], rows[2],
                                           rows[3]};
  EXPECT_TRUE(obs::perf::diff_has_failure(no_regress));
  EXPECT_FALSE(
      obs::perf::diff_has_failure(no_regress, /*missing_fails=*/false));
  const std::vector<DiffRow> clean = {rows[0], rows[2], rows[3]};
  EXPECT_FALSE(obs::perf::diff_has_failure(clean));
}

// Exit-code contract of the real bench_report binary.
TEST(BenchReportBinary, ExitCodes) {
  TempFile base("/perf_report_base.json");
  TempFile regressed("/perf_report_regressed.json");
  TempFile other_suite("/perf_report_other.json");

  BenchDoc doc;
  doc.suite = "kernels";
  doc.meta = fixed_meta();
  doc.results = {make_result("gemm", "s", 1, 10.0)};
  obs::perf::write_bench_file(base.path(), doc);

  BenchDoc slow = doc;
  slow.results[0].median_ms = 100.0;
  obs::perf::write_bench_file(regressed.path(), slow);

  BenchDoc other = doc;
  other.suite = "predictor";
  obs::perf::write_bench_file(other_suite.path(), other);

  const std::string bin = A3CS_BENCH_REPORT_BIN;
  const std::string quiet = " > /dev/null 2>&1";
  EXPECT_EQ(run_command(bin + " --check --baseline " + base.path() +
                        " --current " + base.path() + quiet),
            0);
  EXPECT_EQ(run_command(bin + " --check --baseline " + base.path() +
                        " --current " + regressed.path() + quiet),
            1);
  // Without --check a regression still reports but does not gate.
  EXPECT_EQ(run_command(bin + " --baseline " + base.path() + " --current " +
                        regressed.path() + quiet),
            0);
  // A generous threshold lets the same pair pass.
  EXPECT_EQ(run_command(bin + " --check --max-regress 10000 --baseline " +
                        base.path() + " --current " + regressed.path() +
                        quiet),
            0);
  EXPECT_EQ(run_command(bin + " --check --baseline " + base.path() +
                        " --current " + other_suite.path() + quiet),
            2);
  EXPECT_EQ(run_command(bin + " --check --baseline " + base.path() +
                        ".nope --current " + base.path() + quiet),
            3);
  EXPECT_EQ(run_command(bin + " --bogus-flag" + quiet), 2);
}

// ------------------------------------------------------------ chrome trace --

// Walks traceEvents and checks per-(pid,tid) B/E balance; returns the E
// event count.
int check_balanced(const obs::JsonValue& root) {
  const obs::JsonValue* events = root.find("traceEvents");
  EXPECT_NE(events, nullptr);
  std::map<std::string, std::vector<std::string>> open;
  int closed = 0;
  for (const obs::JsonValue& ev : events->as_array()) {
    const std::string ph = ev.string_or("ph", "");
    if (ph != "B" && ph != "E") continue;
    const std::string lane =
        std::to_string(static_cast<int>(ev.number_or("pid", 0))) + "/" +
        std::to_string(static_cast<int>(ev.number_or("tid", 0)));
    if (ph == "B") {
      open[lane].push_back(ev.string_or("name", ""));
      continue;
    }
    EXPECT_FALSE(open[lane].empty()) << "unbalanced E on lane " << lane;
    if (!open[lane].empty()) {
      EXPECT_EQ(open[lane].back(), ev.string_or("name", ""));
      open[lane].pop_back();
      ++closed;
    }
  }
  for (const auto& [lane, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed B on lane " << lane;
  }
  return closed;
}

TEST(ChromeTrace, BalancedEventsWithWorkAnnotations) {
  TempFile tmp("/perf_chrome_unit.json");
  obs::ObsConfig cfg;
  cfg.profile_enabled = true;
  cfg.profile_chrome_path = tmp.path();
  obs::Profiler::set_enabled(true);
  {
    obs::perf::ChromeTraceSession session(cfg);
    ASSERT_TRUE(session.active());
    ASSERT_TRUE(obs::perf::chrome_trace_active());
    {
      A3CS_PROF_SCOPE("outer");
      {
        A3CS_PROF_SCOPE("unit-kernel");
        obs::perf::WorkCounters::named("unit-kernel").add(1000, 64, 32);
        obs::perf::WorkCounters::named("unit-kernel").add(500, 16, 8);
      }
    }
  }
  obs::Profiler::set_enabled(false);
  EXPECT_FALSE(obs::perf::chrome_trace_active());

  const obs::JsonValue root = obs::JsonValue::parse(slurp(tmp.path()));
  ASSERT_TRUE(root.is_object());
  const obs::JsonValue* meta = root.find("otherData");
  ASSERT_NE(meta, nullptr);
  EXPECT_FALSE(meta->string_or("git_sha", "").empty());
  EXPECT_FALSE(meta->string_or("host", "").empty());
  EXPECT_EQ(check_balanced(root), 2);

  // The kernel scope's E event carries the accumulated work annotation.
  bool found_annotated = false;
  for (const obs::JsonValue& ev : root.find("traceEvents")->as_array()) {
    if (ev.string_or("ph", "") != "E" ||
        ev.string_or("name", "") != "unit-kernel") {
      continue;
    }
    const obs::JsonValue* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->number_or("flops", 0), 1500.0);
    EXPECT_DOUBLE_EQ(args->number_or("bytes_read", 0), 80.0);
    EXPECT_DOUBLE_EQ(args->number_or("bytes_written", 0), 40.0);
    found_annotated = true;
  }
  EXPECT_TRUE(found_annotated);
}

TEST(ChromeTrace, ScopesWithoutSessionEmitNothing) {
  obs::Profiler::set_enabled(true);
  {
    // No ChromeTraceSession: the thread-local stack must still balance and
    // no writer may be touched.
    A3CS_PROF_SCOPE("orphan");
    obs::perf::WorkCounters::named("orphan-kernel").add(1, 1, 1);
  }
  obs::Profiler::set_enabled(false);
  EXPECT_FALSE(obs::perf::chrome_trace_active());
}

// ----------------------------------------------------------- work counters --

TEST(WorkCounters, GemmFlopsMatchAnalyticModel) {
  obs::perf::reset_work_counters();
  const int m = 8, k = 16, n = 4;
  Tensor a(Shape::mat(m, k));
  Tensor b(Shape::mat(k, n));
  Tensor c(Shape::mat(m, n));
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] = 0.5f;
  for (std::int64_t i = 0; i < b.numel(); ++i) b[i] = 0.25f;
  tensor::gemm(a, false, b, false, c);

  const auto snap = obs::perf::work_snapshot();
  const auto it = snap.find("gemm");
  ASSERT_NE(it, snap.end());
  EXPECT_EQ(it->second.flops, 2ll * m * k * n);
  // A(m,k) + B(k,n) floats read, C(m,n) floats written.
  EXPECT_EQ(it->second.bytes_read, 4ll * (m * k + k * n));
  EXPECT_EQ(it->second.bytes_written, 4ll * m * n);

  obs::perf::reset_work_counters();
  const auto cleared = obs::perf::work_snapshot();
  const auto it2 = cleared.find("gemm");
  ASSERT_NE(it2, cleared.end());
  EXPECT_EQ(it2->second.flops, 0);
}

// ------------------------------------------------- histogram quantiles ----

TEST(MetricsHistogram, ExactQuantilesForSmallSamples) {
  obs::Histogram h({1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  // 1..100: exact interpolation, far from any bucket bound.
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_NEAR(h.quantile(0.9), 90.1, 1e-9);
  h.reset();
  h.record(42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
}

TEST(MetricsHistogram, SnapshotCarriesQuantiles) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("perf.test.hist", {1.0, 10.0});
  h.record(2.0);
  h.record(4.0);
  h.record(6.0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  const auto it = snap.histograms.find("perf.test.hist");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_DOUBLE_EQ(it->second.p50, 4.0);
}

// ------------------------------------------------- cosearch_full e2e ----

// Drives the real pipeline binary with A3CS_PROFILE_CHROME and checks that
// the emitted trace is valid trace_events JSON with balanced scopes and
// work-annotated GEMM events — the acceptance contract of the Chrome
// exporter. Scale 0.001 keeps the run to a few seconds.
TEST(ChromeTrace, CosearchFullEmitsValidAnnotatedTrace) {
  TempFile trace("/perf_cosearch_trace.json");
  const std::string cmd = std::string("A3CS_SCALE=0.001 A3CS_PROFILE_CHROME=") +
                          trace.path() + " " + A3CS_COSEARCH_BIN +
                          " > /dev/null 2>&1";
  ASSERT_EQ(run_command(cmd), 0);

  // The full-file balance/metadata check through the real tool.
  const std::string check_cmd = std::string(A3CS_BENCH_REPORT_BIN) +
                                " --chrome-check " + trace.path() +
                                " > /dev/null 2>&1";
  EXPECT_EQ(run_command(check_cmd), 0);

  // The trace is large (hundreds of thousands of events), so scan it
  // line-by-line — the writer emits one event per line — instead of parsing
  // the whole document in-process.
  std::ifstream in(trace.path());
  ASSERT_TRUE(in.is_open());
  std::string line;
  bool gemm_annotated = false;
  std::int64_t events = 0;
  while (std::getline(in, line)) {
    if (line.find("\"ph\":\"B\"") != std::string::npos ||
        line.find("\"ph\":\"E\"") != std::string::npos) {
      ++events;
    }
    if (line.find("\"name\":\"gemm\"") != std::string::npos &&
        line.find("\"ph\":\"E\"") != std::string::npos &&
        line.find("\"flops\":") != std::string::npos) {
      gemm_annotated = true;
    }
  }
  EXPECT_GT(events, 100);
  EXPECT_TRUE(gemm_annotated)
      << "no GEMM E event with flops annotation in " << trace.path();
}

}  // namespace
}  // namespace a3cs
