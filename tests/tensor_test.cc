#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace a3cs {
namespace {

using tensor::ConvGeometry;
using tensor::Shape;
using tensor::Tensor;

// --------------------------------------------------------------- Shape ----

TEST(Shape, BasicProperties) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.to_string(), "(2, 3, 4)");
}

TEST(Shape, ScalarHasNumelOne) {
  EXPECT_EQ(Shape::scalar().numel(), 1);
  EXPECT_EQ(Shape::scalar().rank(), 0);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape::mat(2, 3), Shape({2, 3}));
  EXPECT_NE(Shape::mat(2, 3), Shape({3, 2}));
  EXPECT_NE(Shape::mat(2, 3), Shape({2, 3, 1}));
}

TEST(Shape, RejectsNegativeDim) {
  EXPECT_THROW(Shape({-1, 2}), std::runtime_error);
}

TEST(Shape, DimIndexChecked) {
  Shape s({2, 3});
  EXPECT_THROW(s.dim(2), std::runtime_error);
  EXPECT_THROW(s.dim(-1), std::runtime_error);
}

// -------------------------------------------------------------- Tensor ----

TEST(Tensor, ConstructAndFill) {
  Tensor t(Shape::mat(3, 4), 2.5f);
  EXPECT_EQ(t.numel(), 12);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 2.5f);
  t.zero();
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, At2At4Indexing) {
  Tensor m(Shape::mat(2, 3));
  m.at2(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m[5], 7.0f);

  Tensor img(Shape::nchw(2, 3, 4, 5));
  img.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(img[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a(Shape::vec(3), {1, 2, 3});
  Tensor b(Shape::vec(3), {4, 5, 6});
  Tensor c = a + b;
  EXPECT_FLOAT_EQ(c[0], 5);
  EXPECT_FLOAT_EQ(c[2], 9);
  c -= a;
  EXPECT_FLOAT_EQ(c[1], 5);
  c *= 2.0f;
  EXPECT_FLOAT_EQ(c[2], 12);
  c.axpy(-1.0f, b);
  EXPECT_FLOAT_EQ(c[0], 4);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(Shape::vec(3));
  Tensor b(Shape::vec(4));
  EXPECT_THROW(a += b, std::runtime_error);
  EXPECT_THROW(a.dot(b), std::runtime_error);
  EXPECT_THROW(a.axpy(1.0f, b), std::runtime_error);
}

TEST(Tensor, Reductions) {
  Tensor t(Shape::vec(4), {-3, 1, 2, -1});
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_NEAR(t.norm(), std::sqrt(9.0f + 1 + 4 + 1), 1e-6);
}

TEST(Tensor, DotProduct) {
  Tensor a(Shape::vec(3), {1, 2, 3});
  Tensor b(Shape::vec(3), {4, -5, 6});
  EXPECT_FLOAT_EQ(a.dot(b), 4 - 10 + 18);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape::mat(2, 6), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor r = t.reshaped(Shape::nchw(1, 3, 2, 2));
  EXPECT_EQ(r.shape(), Shape::nchw(1, 3, 2, 2));
  EXPECT_FLOAT_EQ(r[7], 7.0f);
  EXPECT_THROW(t.reshaped(Shape::vec(5)), std::runtime_error);
}

TEST(Tensor, DataSizeMustMatchShape) {
  EXPECT_THROW(Tensor(Shape::vec(3), {1.0f, 2.0f}), std::runtime_error);
}

// ---------------------------------------------------------------- GEMM ----

// Reference implementation for validation.
void ref_gemm(const Tensor& a, bool ta, const Tensor& b, bool tb, Tensor& c,
              float alpha, float beta) {
  const int m = c.shape()[0], n = c.shape()[1];
  const int k = ta ? a.shape()[0] : a.shape()[1];
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        const float av = ta ? a.at2(kk, i) : a.at2(i, kk);
        const float bv = tb ? b.at2(j, kk) : b.at2(kk, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at2(i, j) = alpha * static_cast<float>(acc) + beta * c.at2(i, j);
    }
  }
}

struct GemmCase {
  int m, k, n;
  bool ta, tb;
  float alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesReference) {
  const GemmCase p = GetParam();
  util::Rng rng(77);
  Tensor a(p.ta ? Shape::mat(p.k, p.m) : Shape::mat(p.m, p.k));
  Tensor b(p.tb ? Shape::mat(p.n, p.k) : Shape::mat(p.k, p.n));
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] = static_cast<float>(rng.uniform(-1, 1));
  for (std::int64_t i = 0; i < b.numel(); ++i) b[i] = static_cast<float>(rng.uniform(-1, 1));
  Tensor c(Shape::mat(p.m, p.n));
  Tensor c_ref(Shape::mat(p.m, p.n));
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    c[i] = c_ref[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  tensor::gemm(a, p.ta, b, p.tb, c, p.alpha, p.beta);
  ref_gemm(a, p.ta, b, p.tb, c_ref, p.alpha, p.beta);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-4) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeAndScaling, GemmTest,
    ::testing::Values(GemmCase{3, 4, 5, false, false, 1.0f, 0.0f},
                      GemmCase{3, 4, 5, true, false, 1.0f, 0.0f},
                      GemmCase{3, 4, 5, false, true, 1.0f, 0.0f},
                      GemmCase{3, 4, 5, true, true, 1.0f, 0.0f},
                      GemmCase{1, 1, 1, false, false, 2.0f, 0.5f},
                      GemmCase{7, 2, 9, false, false, 0.5f, 1.0f},
                      GemmCase{8, 8, 8, true, true, 1.5f, -0.5f},
                      GemmCase{16, 3, 2, false, true, 1.0f, 1.0f},
                      GemmCase{2, 16, 3, true, false, -1.0f, 0.0f}));

TEST(Gemm, DimensionMismatchThrows) {
  Tensor a(Shape::mat(2, 3)), b(Shape::mat(4, 5)), c(Shape::mat(2, 5));
  EXPECT_THROW(tensor::gemm(a, false, b, false, c), std::runtime_error);
}

// ----------------------------------------------------- im2col / col2im ----

struct ConvCase {
  int n, c, h, w, k, stride, pad;
};

class Im2ColTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Im2ColTest, MatchesDirectGather) {
  const ConvCase p = GetParam();
  util::Rng rng(5);
  Tensor x(Shape::nchw(p.n, p.c, p.h, p.w));
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform(-1, 1));
  const auto g = ConvGeometry::make(x.shape(), p.k, p.k, p.stride, p.pad);
  Tensor cols(Shape::mat(p.c * p.k * p.k, g.n * g.oh * g.ow));
  tensor::im2col(x, g, cols);

  // Every column entry must equal the corresponding (padded) input pixel.
  for (int cr = 0; cr < cols.shape()[0]; ++cr) {
    const int kw = cr % p.k, kh = (cr / p.k) % p.k, ch = cr / (p.k * p.k);
    for (int b = 0; b < g.n; ++b) {
      for (int oy = 0; oy < g.oh; ++oy) {
        for (int ox = 0; ox < g.ow; ++ox) {
          const int iy = oy * p.stride - p.pad + kh;
          const int ix = ox * p.stride - p.pad + kw;
          const float expected =
              (iy >= 0 && iy < p.h && ix >= 0 && ix < p.w)
                  ? x.at4(b, ch, iy, ix)
                  : 0.0f;
          const int col = (b * g.oh + oy) * g.ow + ox;
          EXPECT_FLOAT_EQ(cols.at2(cr, col), expected);
        }
      }
    }
  }
}

TEST_P(Im2ColTest, Col2ImIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y (adjointness), verified
  // with random probes.
  const ConvCase p = GetParam();
  util::Rng rng(6);
  Tensor x(Shape::nchw(p.n, p.c, p.h, p.w));
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform(-1, 1));
  const auto g = ConvGeometry::make(x.shape(), p.k, p.k, p.stride, p.pad);
  Tensor cols(Shape::mat(p.c * p.k * p.k, g.n * g.oh * g.ow));
  tensor::im2col(x, g, cols);

  Tensor y(cols.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] = static_cast<float>(rng.uniform(-1, 1));
  Tensor back(x.shape());
  tensor::col2im(y, g, back);

  EXPECT_NEAR(cols.dot(y), x.dot(back), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColTest,
    ::testing::Values(ConvCase{1, 1, 5, 5, 3, 1, 1},
                      ConvCase{2, 3, 6, 6, 3, 2, 1},
                      ConvCase{1, 2, 12, 12, 5, 2, 2},
                      ConvCase{3, 4, 4, 4, 1, 1, 0},
                      ConvCase{1, 3, 7, 5, 3, 1, 1},
                      ConvCase{2, 2, 6, 6, 5, 1, 2},
                      ConvCase{1, 1, 3, 3, 3, 2, 1}));

TEST(ConvGeometry, OutputDims) {
  const auto g = ConvGeometry::make(Shape::nchw(1, 3, 12, 12), 3, 3, 2, 1);
  EXPECT_EQ(g.oh, 6);
  EXPECT_EQ(g.ow, 6);
  const auto g2 = ConvGeometry::make(Shape::nchw(1, 3, 6, 6), 5, 5, 2, 2);
  EXPECT_EQ(g2.oh, 3);
  EXPECT_EQ(g2.ow, 3);
}

TEST(ConvGeometry, RejectsEmptyOutput) {
  EXPECT_THROW(ConvGeometry::make(Shape::nchw(1, 1, 2, 2), 5, 5, 1, 0),
               std::runtime_error);
}

// ------------------------------------------------------------- Softmax ----

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(8);
  Tensor logits(Shape::mat(5, 7));
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    logits[i] = static_cast<float>(rng.uniform(-10, 10));
  }
  Tensor probs(logits.shape());
  tensor::softmax_rows(logits, probs);
  for (int r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 7; ++c) {
      EXPECT_GT(probs.at2(r, c), 0.0f);
      sum += probs.at2(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableWithHugeLogits) {
  Tensor logits(Shape::mat(1, 3), {1000.0f, 1001.0f, 999.0f});
  Tensor probs(logits.shape());
  tensor::softmax_rows(logits, probs);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_GT(probs.at2(0, 1), probs.at2(0, 0));
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  util::Rng rng(9);
  Tensor logits(Shape::mat(3, 4));
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    logits[i] = static_cast<float>(rng.uniform(-3, 3));
  }
  Tensor probs(logits.shape()), logp(logits.shape());
  tensor::softmax_rows(logits, probs);
  tensor::log_softmax_rows(logits, logp);
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(logp[i], std::log(probs[i]), 1e-5);
  }
}

TEST(Argmax, FindsFirstMaximum) {
  Tensor t(Shape::vec(5), {1, 5, 3, 5, 2});
  EXPECT_EQ(tensor::argmax(t), 1);
}

// --------------------------------------------------------- Serialization --

TEST(Serialize, TensorRoundTrip) {
  util::Rng rng(10);
  Tensor t(Shape::nchw(2, 3, 4, 5));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1, 1));
  std::stringstream ss;
  tensor::write_tensor(ss, t);
  Tensor u = tensor::read_tensor(ss);
  ASSERT_EQ(u.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(u[i], t[i]);
}

TEST(Serialize, FileRoundTripWithNames) {
  const std::string path = ::testing::TempDir() + "/a3cs_tensors.bin";
  std::vector<std::pair<std::string, Tensor>> tensors;
  tensors.emplace_back("w1", Tensor(Shape::mat(2, 2), {1, 2, 3, 4}));
  tensors.emplace_back("b1", Tensor(Shape::vec(3), {5, 6, 7}));
  tensor::write_tensors(path, tensors);
  const auto loaded = tensor::read_tensors(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].first, "w1");
  EXPECT_EQ(loaded[1].first, "b1");
  EXPECT_FLOAT_EQ(loaded[0].second[3], 4.0f);
  EXPECT_FLOAT_EQ(loaded[1].second[0], 5.0f);
  std::filesystem::remove(path);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream ss;
  ss << "NOTAMAGIC";
  EXPECT_THROW(tensor::read_tensor(ss), std::runtime_error);
}

TEST(Serialize, MissingFileRejected) {
  EXPECT_THROW(tensor::read_tensors("/nonexistent/path/file.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace a3cs
