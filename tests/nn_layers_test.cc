#include <gtest/gtest.h>

#include "grad_check.h"
#include "nn/blocks.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace a3cs {
namespace {

using nn::Shape;
using nn::Tensor;
using testing::check_module_gradients;

// ------------------------------------------------- gradient checks --------

struct ConvParam {
  int n, in_c, out_c, k, stride, h, w;
};

class Conv2dGradTest : public ::testing::TestWithParam<ConvParam> {};

TEST_P(Conv2dGradTest, FiniteDifference) {
  const ConvParam p = GetParam();
  util::Rng rng(100);
  nn::Conv2d conv("conv", p.in_c, p.out_c, p.k, p.stride, p.k / 2, rng);
  check_module_gradients(conv, Shape::nchw(p.n, p.in_c, p.h, p.w));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Conv2dGradTest,
    ::testing::Values(ConvParam{1, 2, 3, 3, 1, 5, 5},
                      ConvParam{2, 3, 4, 3, 2, 6, 6},
                      ConvParam{1, 2, 2, 5, 2, 8, 8},
                      ConvParam{2, 1, 4, 1, 1, 4, 4},
                      ConvParam{1, 4, 2, 3, 1, 3, 3},
                      ConvParam{3, 2, 2, 3, 2, 5, 5}));

struct DwParam {
  int n, c, k, stride, h, w;
};

class DepthwiseGradTest : public ::testing::TestWithParam<DwParam> {};

TEST_P(DepthwiseGradTest, FiniteDifference) {
  const DwParam p = GetParam();
  util::Rng rng(101);
  nn::DepthwiseConv2d dw("dw", p.c, p.k, p.stride, p.k / 2, rng);
  check_module_gradients(dw, Shape::nchw(p.n, p.c, p.h, p.w));
}

INSTANTIATE_TEST_SUITE_P(Geometries, DepthwiseGradTest,
                         ::testing::Values(DwParam{1, 3, 3, 1, 5, 5},
                                           DwParam{2, 4, 3, 2, 6, 6},
                                           DwParam{1, 2, 5, 1, 7, 7},
                                           DwParam{2, 6, 5, 2, 6, 6}));

struct LinParam {
  int n, in_f, out_f;
};

class LinearGradTest : public ::testing::TestWithParam<LinParam> {};

TEST_P(LinearGradTest, FiniteDifference) {
  const LinParam p = GetParam();
  util::Rng rng(102);
  nn::Linear lin("lin", p.in_f, p.out_f, rng);
  check_module_gradients(lin, Shape::mat(p.n, p.in_f));
}

INSTANTIATE_TEST_SUITE_P(Geometries, LinearGradTest,
                         ::testing::Values(LinParam{1, 4, 3},
                                           LinParam{5, 8, 2},
                                           LinParam{2, 16, 16},
                                           LinParam{3, 1, 7}));

TEST(ReLUGrad, FiniteDifference) {
  nn::ReLU relu;
  check_module_gradients(relu, Shape::mat(3, 8));
}

TEST(FlattenGrad, FiniteDifference) {
  nn::Flatten flatten;
  check_module_gradients(flatten, Shape::nchw(2, 3, 4, 4));
}

TEST(SequentialGrad, ConvReluLinearStack) {
  util::Rng rng(103);
  auto seq = std::make_unique<nn::Sequential>("stack");
  seq->add(std::make_unique<nn::Conv2d>("c1", 2, 4, 3, 2, 1, rng));
  seq->add(std::make_unique<nn::ReLU>());
  seq->add(std::make_unique<nn::Flatten>());
  seq->add(std::make_unique<nn::Linear>("l1", 4 * 3 * 3, 5, rng));
  check_module_gradients(*seq, Shape::nchw(2, 2, 6, 6));
}

struct BlockParam {
  int in_c, out_c, k, stride;
};

class ResidualGradTest : public ::testing::TestWithParam<BlockParam> {};

TEST_P(ResidualGradTest, FiniteDifference) {
  const BlockParam p = GetParam();
  util::Rng rng(104);
  nn::ResidualBlock block("rb", p.in_c, p.out_c, p.k, p.stride, rng);
  // Composite blocks stack two ReLUs: finite differences occasionally cross
  // a kink, so the tolerance is looser than for primitive layers (wiring
  // errors would show up as order-1 discrepancies, not a few percent).
  testing::GradCheckOptions opt;
  opt.rel_tol = 0.15f;
  opt.abs_tol = 5e-2f;
  check_module_gradients(block, Shape::nchw(2, p.in_c, 6, 6), 1234, opt);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ResidualGradTest,
                         ::testing::Values(BlockParam{3, 3, 3, 1},
                                           BlockParam{2, 4, 3, 2},
                                           BlockParam{4, 4, 3, 2},
                                           BlockParam{2, 6, 3, 1}));

class InvResGradTest : public ::testing::TestWithParam<BlockParam> {};

TEST_P(InvResGradTest, FiniteDifference) {
  const BlockParam p = GetParam();
  util::Rng rng(105);
  // BlockParam.k reused as kernel, stride as stride; expansion 3.
  nn::InvertedResidual block("ir", p.in_c, p.out_c, p.k, 3, p.stride, rng);
  testing::GradCheckOptions opt;
  opt.rel_tol = 0.15f;
  opt.abs_tol = 5e-2f;
  check_module_gradients(block, Shape::nchw(2, p.in_c, 6, 6), 1234, opt);
}

INSTANTIATE_TEST_SUITE_P(Geometries, InvResGradTest,
                         ::testing::Values(BlockParam{3, 3, 3, 1},
                                           BlockParam{2, 4, 3, 2},
                                           BlockParam{3, 3, 5, 1},
                                           BlockParam{2, 5, 5, 2}));

TEST(SkipOpGrad, IdentityCase) {
  nn::SkipOp skip("skip", 3, 3, 1);
  check_module_gradients(skip, Shape::nchw(2, 3, 4, 4));
}

TEST(SkipOpGrad, StridedChannelChangingCase) {
  nn::SkipOp skip("skip", 2, 4, 2);
  check_module_gradients(skip, Shape::nchw(2, 2, 6, 6));
}

// ------------------------------------------------- forward semantics ------

TEST(Conv2d, OutputShapeAndBias) {
  util::Rng rng(1);
  nn::Conv2d conv("c", 2, 3, 3, 2, 1, rng);
  // Zero weights isolate the bias.
  conv.weight().value.zero();
  conv.bias().value = Tensor(Shape::vec(3), {1.0f, 2.0f, 3.0f});
  Tensor x(Shape::nchw(2, 2, 6, 6), 0.5f);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), Shape::nchw(2, 3, 3, 3));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.at4(1, 2, 2, 2), 3.0f);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  util::Rng rng(1);
  nn::Conv2d conv("c", 1, 1, 3, 1, 1, rng);
  conv.weight().value.zero();
  conv.weight().value[4] = 1.0f;  // center tap of the 3x3 kernel
  conv.bias().value.zero();
  Tensor x(Shape::nchw(1, 1, 4, 4));
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  Tensor y = conv.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  util::Rng rng(1);
  nn::Conv2d conv("c", 2, 3, 3, 1, 1, rng);
  Tensor x(Shape::nchw(1, 5, 6, 6));
  EXPECT_THROW(conv.forward(x), std::runtime_error);
}

TEST(Linear, MatchesManualComputation) {
  util::Rng rng(1);
  nn::Linear lin("l", 2, 2, rng);
  auto params = lin.parameters();
  params[0]->value = Tensor(Shape::mat(2, 2), {1, 2, 3, 4});  // W
  params[1]->value = Tensor(Shape::vec(2), {10, 20});         // b
  Tensor x(Shape::mat(1, 2), {5, 6});
  Tensor y = lin.forward(x);
  // y = x @ W^T + b = [5*1+6*2+10, 5*3+6*4+20]
  EXPECT_FLOAT_EQ(y.at2(0, 0), 27.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 59.0f);
}

TEST(ReLU, ClampsNegatives) {
  nn::ReLU relu;
  Tensor x(Shape::vec(4), {-1, 0, 2, -3});
  Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[1], 0);
  EXPECT_FLOAT_EQ(y[2], 2);
  EXPECT_FLOAT_EQ(y[3], 0);
}

TEST(Flatten, ShapeRoundTrip) {
  nn::Flatten f;
  Tensor x(Shape::nchw(2, 3, 4, 5));
  Tensor y = f.forward(x);
  EXPECT_EQ(y.shape(), Shape::mat(2, 60));
  Tensor back = f.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(SkipOp, IdentityPassThrough) {
  nn::SkipOp skip("s", 3, 3, 1);
  Tensor x(Shape::nchw(1, 3, 4, 4), 0.7f);
  Tensor y = skip.forward(x);
  EXPECT_TRUE(y.same_shape(x));
  EXPECT_FLOAT_EQ(y[5], 0.7f);
}

TEST(SkipOp, StridedOutputShape) {
  nn::SkipOp skip("s", 2, 4, 2);
  Tensor x(Shape::nchw(1, 2, 6, 6));
  Tensor y = skip.forward(x);
  EXPECT_EQ(y.shape(), Shape::nchw(1, 4, 3, 3));
}

TEST(BackwardBeforeForward, Throws) {
  util::Rng rng(1);
  nn::Conv2d conv("c", 1, 1, 3, 1, 1, rng);
  Tensor g(Shape::nchw(1, 1, 4, 4));
  EXPECT_THROW(conv.backward(g), std::runtime_error);
}

// ------------------------------------------------- parameters / utils -----

TEST(Parameters, CountsAndNames) {
  util::Rng rng(1);
  nn::Conv2d conv("myconv", 2, 3, 3, 1, 1, rng);
  auto params = conv.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->name, "myconv.weight");
  EXPECT_EQ(params[1]->name, "myconv.bias");
  EXPECT_EQ(params[0]->numel(), 3 * 2 * 9);
  EXPECT_EQ(params[1]->numel(), 3);
  EXPECT_EQ(conv.num_parameters(), 3 * 2 * 9 + 3);
}

TEST(Parameters, ZeroGradClearsAll) {
  util::Rng rng(1);
  nn::Linear lin("l", 3, 2, rng);
  Tensor x(Shape::mat(1, 3), {1, 2, 3});
  lin.forward(x);
  lin.backward(Tensor(Shape::mat(1, 2), {1, 1}));
  EXPECT_GT(lin.parameters()[0]->grad.abs_max(), 0.0f);
  lin.zero_grad();
  EXPECT_FLOAT_EQ(lin.parameters()[0]->grad.abs_max(), 0.0f);
}

TEST(Parameters, GradientsAccumulateAcrossBackwards) {
  util::Rng rng(1);
  nn::Linear lin("l", 2, 1, rng);
  Tensor x(Shape::mat(1, 2), {1, 1});
  Tensor g(Shape::mat(1, 1), {1});
  lin.forward(x);
  lin.backward(g);
  const float once = lin.parameters()[0]->grad[0];
  lin.forward(x);
  lin.backward(g);
  EXPECT_FLOAT_EQ(lin.parameters()[0]->grad[0], 2 * once);
}

TEST(CopyParameters, TransfersValues) {
  util::Rng rng1(1), rng2(2);
  nn::Linear a("a", 3, 2, rng1), b("b", 3, 2, rng2);
  EXPECT_NE(a.parameters()[0]->value[0], b.parameters()[0]->value[0]);
  nn::copy_parameters(a, b);
  for (std::int64_t i = 0; i < a.parameters()[0]->value.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.parameters()[0]->value[i], b.parameters()[0]->value[i]);
  }
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  util::Rng rng(1);
  nn::Linear lin("l", 2, 2, rng);
  auto params = lin.parameters();
  params[0]->grad.fill(10.0f);
  params[1]->grad.fill(10.0f);
  const float norm_before = nn::clip_grad_norm(params, 1.0f);
  EXPECT_GT(norm_before, 1.0f);
  double total = 0.0;
  for (auto* p : params) {
    const float n = p->grad.norm();
    total += static_cast<double>(n) * n;
  }
  EXPECT_NEAR(std::sqrt(total), 1.0, 1e-5);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  util::Rng rng(1);
  nn::Linear lin("l", 2, 2, rng);
  auto params = lin.parameters();
  params[0]->grad.fill(0.01f);
  nn::clip_grad_norm(params, 100.0f);
  EXPECT_FLOAT_EQ(params[0]->grad[0], 0.01f);
}

}  // namespace
}  // namespace a3cs
