// Cross-backend validation: every kernel of the avx2 backend must agree
// with the scalar reference across a shape/stride/trans-flag/thread-count
// grid under the ULP tolerance policy of tensor/backend/check.h — plus unit
// coverage for the checker utility itself (tolerance violations, NaN/Inf
// reporting, deterministic failure messages).
//
// On hosts without AVX2+FMA the grid cases GTEST_SKIP; the checker-utility
// cases always run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "tensor/backend/backend.h"
#include "tensor/backend/check.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace a3cs {
namespace {

namespace backend = tensor::backend;
using tensor::ConvGeometry;
using tensor::Shape;
using tensor::Tensor;

std::vector<float> random_vec(std::int64_t n, util::Rng& rng, double lo = -1.0,
                              double hi = 1.0) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

// ------------------------------------------------- checker utility itself --

TEST(UlpDistance, CountsRepresentableSteps) {
  EXPECT_EQ(backend::ulp_distance(1.0f, 1.0f), 0);
  EXPECT_EQ(backend::ulp_distance(0.0f, -0.0f), 0);
  const float next = std::nextafter(1.0f, 2.0f);
  EXPECT_EQ(backend::ulp_distance(1.0f, next), 1);
  EXPECT_EQ(backend::ulp_distance(next, 1.0f), 1);
  // Crossing zero counts the values on both sides.
  const float tiny = std::nextafter(0.0f, 1.0f);
  EXPECT_EQ(backend::ulp_distance(tiny, -tiny), 2);
}

TEST(UlpDistance, NanAndMismatchedInfAreMaximal) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const auto kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(backend::ulp_distance(nan, 1.0f), kMax);
  EXPECT_EQ(backend::ulp_distance(1.0f, nan), kMax);
  EXPECT_EQ(backend::ulp_distance(nan, nan), kMax);
  EXPECT_EQ(backend::ulp_distance(inf, 1.0f), kMax);
  EXPECT_EQ(backend::ulp_distance(inf, -inf), kMax);
  EXPECT_EQ(backend::ulp_distance(inf, inf), 0);  // equal infinities match
}

TEST(Checker, DetectsToleranceViolationAtFirstIndex) {
  backend::CheckOptions opt;
  opt.max_ulps = 4;
  opt.abs_tol = 0.0f;
  std::vector<float> expected{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> actual = expected;
  actual[1] = 2.5f;   // far out of tolerance
  actual[3] = 4.25f;  // also out
  const auto res = backend::compare_elementwise(expected.data(), actual.data(),
                                                4, opt, "gemm 2x2x2");
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.mismatches, 2);
  // The message is deterministic: label, first offending index, both values.
  EXPECT_NE(res.message.find("gemm 2x2x2"), std::string::npos);
  EXPECT_NE(res.message.find("first at [1]"), std::string::npos);
  EXPECT_NE(res.message.find("expected=2"), std::string::npos);
  EXPECT_NE(res.message.find("actual=2.5"), std::string::npos);
  EXPECT_NE(res.message.find("2/4 elements"), std::string::npos);
  // Byte-identical on a second run.
  const auto res2 = backend::compare_elementwise(expected.data(),
                                                 actual.data(), 4, opt,
                                                 "gemm 2x2x2");
  EXPECT_EQ(res.message, res2.message);
}

TEST(Checker, WithinUlpToleranceIsOk) {
  backend::CheckOptions opt;
  opt.max_ulps = 4;
  opt.abs_tol = 0.0f;
  std::vector<float> expected{1.0f, -3.5f, 100.0f};
  std::vector<float> actual{std::nextafter(1.0f, 2.0f),
                            std::nextafter(-3.5f, 0.0f), 100.0f};
  const auto res = backend::compare_elementwise(expected.data(), actual.data(),
                                                3, opt, "x");
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.mismatches, 0);
  EXPECT_TRUE(res.message.empty());
}

TEST(Checker, AbsToleranceRescuesCancellationNearZero) {
  // 1e-30 vs -1e-30 is a huge ULP distance but a negligible absolute error.
  backend::CheckOptions opt;
  opt.max_ulps = 4;
  opt.abs_tol = 1e-6f;
  const float a = 1e-30f, b = -1e-30f;
  EXPECT_GT(backend::ulp_distance(a, b), 1000000);
  const auto res = backend::compare_elementwise(&a, &b, 1, opt, "x");
  EXPECT_TRUE(res.ok);
}

TEST(Checker, NanMismatchIsReported) {
  backend::CheckOptions opt;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> expected{1.0f, nan};
  std::vector<float> actual{nan, nan};
  // Both-NaN (index 1) matches; NaN-vs-number (index 0) must fail even
  // though |e - a| is NaN (never <= abs_tol).
  const auto res = backend::compare_elementwise(expected.data(), actual.data(),
                                                2, opt, "conv 1x2");
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.mismatches, 1);
  EXPECT_NE(res.message.find("first at [0]"), std::string::npos);
  EXPECT_NE(res.message.find("nan/inf-mismatch"), std::string::npos);
}

TEST(Checker, OppositeInfinitiesMismatch) {
  backend::CheckOptions opt;
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> expected{inf, -inf};
  std::vector<float> actual{inf, inf};
  const auto res = backend::compare_elementwise(expected.data(), actual.data(),
                                                2, opt, "x");
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.mismatches, 1);
  EXPECT_NE(res.message.find("first at [1]"), std::string::npos);
}

TEST(Checker, TensorShapeMismatchIsItsOwnError) {
  Tensor a(Shape::mat(2, 3));
  Tensor b(Shape::mat(3, 2));
  const auto res =
      backend::compare_tensors(a, b, backend::CheckOptions{}, "gemm");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.message.find("shape mismatch"), std::string::npos);
}

TEST(Checker, ToleranceScalesWithReductionLength) {
  const auto small = backend::tolerance_for_reduction(4);
  const auto big = backend::tolerance_for_reduction(4096);
  EXPECT_LT(small.max_ulps, big.max_ulps);
  EXPECT_LT(small.abs_tol, big.abs_tol);
  EXPECT_GT(small.max_ulps, 0);
}

// ------------------------------------------------------ cross-backend grid --

class BackendGrid : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!backend::cpu_supports_avx2()) {
      GTEST_SKIP() << "host lacks AVX2+FMA; avx2 backend unavailable";
    }
  }
  void TearDown() override { util::ThreadPool::set_global_threads(1); }
};

TEST_F(BackendGrid, AvailableNamesListsBoth) {
  const auto names = backend::available_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "scalar");
  EXPECT_EQ(names[1], "avx2");
  EXPECT_STREQ(backend::avx2_backend()->name, "avx2");
}

TEST_F(BackendGrid, SelectRejectsUnknownNames) {
  EXPECT_FALSE(backend::select("sse9"));
  EXPECT_TRUE(backend::select("auto"));
  EXPECT_STREQ(backend::active().name, "avx2");
  EXPECT_TRUE(backend::select("scalar"));
  EXPECT_STREQ(backend::active().name, "scalar");
}

TEST_F(BackendGrid, GemmMatchesScalarAcrossShapeTransAlphaBetaThreads) {
  struct ShapeCase {
    int m, k, n;
  };
  // Full tiles, edge tiles in every dimension, k=1 reductions, tall/wide.
  const ShapeCase shapes[] = {{1, 1, 1},   {6, 8, 16},  {7, 17, 33},
                              {5, 3, 2},   {16, 64, 16}, {13, 100, 29},
                              {64, 256, 64}};
  const float alpha_beta[][2] = {{1.0f, 0.0f}, {1.0f, 1.0f}, {0.5f, -0.25f}};
  util::Rng rng(20260807);
  for (const auto& sc : shapes) {
    for (const bool trans_a : {false, true}) {
      for (const bool trans_b : {false, true}) {
        const auto a = random_vec(static_cast<std::int64_t>(sc.m) * sc.k, rng);
        const auto b = random_vec(static_cast<std::int64_t>(sc.k) * sc.n, rng);
        const auto c0 =
            random_vec(static_cast<std::int64_t>(sc.m) * sc.n, rng);
        for (const auto& ab : alpha_beta) {
          for (const int threads : {1, 4}) {
            util::ThreadPool::set_global_threads(threads);
            std::vector<float> c_ref = c0;
            {
              backend::ScopedBackend use(backend::scalar_backend());
              tensor::gemm_raw(a.data(), trans_a, b.data(), trans_b,
                               c_ref.data(), sc.m, sc.k, sc.n, ab[0], ab[1]);
            }
            std::vector<float> c_avx = c0;
            {
              backend::ScopedBackend use(*backend::avx2_backend());
              tensor::gemm_raw(a.data(), trans_a, b.data(), trans_b,
                               c_avx.data(), sc.m, sc.k, sc.n, ab[0], ab[1]);
            }
            const auto opt = backend::tolerance_for_reduction(sc.k);
            const std::string label =
                "gemm " + std::to_string(sc.m) + "x" + std::to_string(sc.k) +
                "x" + std::to_string(sc.n) + " tA=" + std::to_string(trans_a) +
                " tB=" + std::to_string(trans_b) +
                " alpha=" + std::to_string(ab[0]) +
                " beta=" + std::to_string(ab[1]) +
                " threads=" + std::to_string(threads);
            const auto res = backend::compare_elementwise(
                c_ref.data(), c_avx.data(),
                static_cast<std::int64_t>(sc.m) * sc.n, opt, label);
            EXPECT_TRUE(res.ok) << res.message;
          }
        }
      }
    }
  }
}

TEST_F(BackendGrid, GemmPerBackendResultsThreadCountInvariant) {
  // Per-backend determinism: for EACH backend the result must be
  // bit-identical at 1 and 4 threads (sharding never changes numerics).
  util::Rng rng(99);
  const int m = 37, k = 129, n = 53;
  const auto a = random_vec(static_cast<std::int64_t>(m) * k, rng);
  const auto b = random_vec(static_cast<std::int64_t>(k) * n, rng);
  for (const char* name : {"scalar", "avx2"}) {
    ASSERT_TRUE(backend::select(name));
    std::vector<std::vector<float>> results;
    for (const int threads : {1, 4}) {
      util::ThreadPool::set_global_threads(threads);
      std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
      tensor::gemm_raw(a.data(), false, b.data(), false, c.data(), m, k, n);
      results.push_back(std::move(c));
    }
    EXPECT_EQ(results[0], results[1]) << name << " not thread-invariant";
  }
  backend::select("scalar");
}

TEST_F(BackendGrid, Im2colAndCol2imBitExactAcrossStridePadGrid) {
  // Pure data movement (im2col) and order-preserving accumulation (col2im)
  // must be BIT-exact across backends: max_ulps = 0.
  struct GeomCase {
    int n, c, h, w, kh, stride, pad;
  };
  const GeomCase geoms[] = {{2, 3, 12, 12, 3, 1, 1}, {1, 1, 5, 5, 3, 2, 0},
                            {2, 2, 8, 8, 1, 1, 0},   {1, 3, 9, 7, 5, 1, 2},
                            {3, 1, 6, 6, 3, 2, 1},   {1, 2, 4, 4, 4, 1, 3}};
  backend::CheckOptions exact;
  exact.max_ulps = 0;
  exact.abs_tol = 0.0f;
  util::Rng rng(7);
  for (const auto& gc : geoms) {
    for (const int threads : {1, 4}) {
      util::ThreadPool::set_global_threads(threads);
      Tensor input(Shape::nchw(gc.n, gc.c, gc.h, gc.w));
      for (std::int64_t i = 0; i < input.numel(); ++i) {
        input[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
      const auto g = ConvGeometry::make(input.shape(), gc.kh, gc.kh,
                                        gc.stride, gc.pad);
      const Shape cols_shape =
          Shape::mat(g.c * g.kh * g.kw, g.n * g.oh * g.ow);
      const std::string label = "geom " + std::to_string(gc.n) + "x" +
                                std::to_string(gc.c) + "x" +
                                std::to_string(gc.h) + "x" +
                                std::to_string(gc.w) + " k" +
                                std::to_string(gc.kh) + " s" +
                                std::to_string(gc.stride) + " p" +
                                std::to_string(gc.pad) + " t" +
                                std::to_string(threads);

      Tensor cols_ref(cols_shape), cols_avx(cols_shape);
      {
        backend::ScopedBackend use(backend::scalar_backend());
        tensor::im2col(input, g, cols_ref);
      }
      {
        backend::ScopedBackend use(*backend::avx2_backend());
        tensor::im2col(input, g, cols_avx);
      }
      auto res = backend::compare_tensors(cols_ref, cols_avx, exact,
                                          "im2col " + label);
      EXPECT_TRUE(res.ok) << res.message;

      Tensor grad_ref(input.shape()), grad_avx(input.shape());
      {
        backend::ScopedBackend use(backend::scalar_backend());
        tensor::col2im(cols_ref, g, grad_ref);
      }
      {
        backend::ScopedBackend use(*backend::avx2_backend());
        tensor::col2im(cols_ref, g, grad_avx);
      }
      res = backend::compare_tensors(grad_ref, grad_avx, exact,
                                     "col2im " + label);
      EXPECT_TRUE(res.ok) << res.message;
    }
  }
}

TEST_F(BackendGrid, ConvKernelsMatchScalarUnderTolerance) {
  // Drives the three conv shard kernels directly over the full task ranges,
  // with a few zero weights to exercise the zero-skip paths.
  const int n = 2, out_c = 5, in_c = 3, kh = 3, oh = 6, ow = 7;
  const int ckk = in_c * kh * kh;
  const int ohw = oh * ow;
  const int batch_cols = n * ohw;
  util::Rng rng(31);
  auto weight = random_vec(static_cast<std::int64_t>(out_c) * ckk, rng);
  weight[3] = 0.0f;
  weight[ckk + 11] = 0.0f;
  const auto bias = random_vec(out_c, rng);
  const auto cols = random_vec(static_cast<std::int64_t>(ckk) * batch_cols,
                               rng);
  const auto grad_out = random_vec(static_cast<std::int64_t>(n) * out_c * ohw,
                                   rng);
  const backend::Backend& sc = backend::scalar_backend();
  const backend::Backend& av = *backend::avx2_backend();

  // Forward.
  std::vector<float> out_ref(static_cast<std::size_t>(n) * out_c * ohw);
  std::vector<float> out_avx(out_ref.size());
  sc.conv_forward_tasks(weight.data(), bias.data(), cols.data(),
                        out_ref.data(), out_c, ckk, ohw, batch_cols, 0,
                        static_cast<std::int64_t>(n) * out_c);
  av.conv_forward_tasks(weight.data(), bias.data(), cols.data(),
                        out_avx.data(), out_c, ckk, ohw, batch_cols, 0,
                        static_cast<std::int64_t>(n) * out_c);
  auto res = backend::compare_elementwise(
      out_ref.data(), out_avx.data(),
      static_cast<std::int64_t>(out_ref.size()),
      backend::tolerance_for_reduction(ckk), "conv-fwd");
  EXPECT_TRUE(res.ok) << res.message;

  // Weight/bias gradient (+= semantics: start from identical nonzero state).
  const auto wg0 = random_vec(static_cast<std::int64_t>(out_c) * ckk, rng);
  const auto bg0 = random_vec(out_c, rng);
  std::vector<float> wg_ref = wg0, wg_avx = wg0;
  std::vector<float> bg_ref = bg0, bg_avx = bg0;
  sc.conv_backward_wgrad(grad_out.data(), cols.data(), wg_ref.data(),
                         bg_ref.data(), n, out_c, ckk, ohw, batch_cols, 0,
                         out_c);
  av.conv_backward_wgrad(grad_out.data(), cols.data(), wg_avx.data(),
                         bg_avx.data(), n, out_c, ckk, ohw, batch_cols, 0,
                         out_c);
  const auto wopt = backend::tolerance_for_reduction(n * ohw);
  res = backend::compare_elementwise(wg_ref.data(), wg_avx.data(),
                                     static_cast<std::int64_t>(wg_ref.size()),
                                     wopt, "conv-wgrad");
  EXPECT_TRUE(res.ok) << res.message;
  res = backend::compare_elementwise(bg_ref.data(), bg_avx.data(), out_c,
                                     wopt, "conv-bgrad");
  EXPECT_TRUE(res.ok) << res.message;

  // Column gradient (overwrite semantics).
  std::vector<float> gc_ref(static_cast<std::size_t>(ckk) * batch_cols);
  std::vector<float> gc_avx(gc_ref.size());
  sc.conv_backward_colgrad(grad_out.data(), weight.data(), gc_ref.data(),
                           out_c, ckk, ohw, batch_cols, 0, n);
  av.conv_backward_colgrad(grad_out.data(), weight.data(), gc_avx.data(),
                           out_c, ckk, ohw, batch_cols, 0, n);
  res = backend::compare_elementwise(gc_ref.data(), gc_avx.data(),
                                     static_cast<std::int64_t>(gc_ref.size()),
                                     backend::tolerance_for_reduction(out_c),
                                     "conv-colgrad");
  EXPECT_TRUE(res.ok) << res.message;
}

TEST_F(BackendGrid, GemmBetaZeroNeverReadsC) {
  // C initialized with NaN must come out finite when beta == 0 on both
  // backends — a kernel that reads C before scaling would propagate NaN.
  util::Rng rng(5);
  const int m = 9, k = 17, n = 21;
  const auto a = random_vec(static_cast<std::int64_t>(m) * k, rng);
  const auto b = random_vec(static_cast<std::int64_t>(k) * n, rng);
  for (const char* name : {"scalar", "avx2"}) {
    ASSERT_TRUE(backend::select(name));
    std::vector<float> c(static_cast<std::size_t>(m) * n,
                         std::numeric_limits<float>::quiet_NaN());
    tensor::gemm_raw(a.data(), false, b.data(), false, c.data(), m, k, n,
                     1.0f, 0.0f);
    for (const float v : c) {
      ASSERT_TRUE(std::isfinite(v)) << name << " read uninitialized C";
    }
  }
  backend::select("scalar");
}

}  // namespace
}  // namespace a3cs
