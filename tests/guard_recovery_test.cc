// End-to-end fault-injection tests for the training-health guard: a real
// CoSearchEngine run is corrupted through the FaultInjector (NaN gradients,
// Inf losses, NaN weights, torn checkpoints — no mocks, the actual data
// path), and the guard must walk its escalation ladder and finish the run
// with finite state by rolling back to a healthy-tagged checkpoint. The
// negative control proves the faults are real: the same corruption with the
// guard off leaves the network poisoned. Unit tests for the monitor, the
// policy ladder and the injector live in guard_test.cc.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ckpt/manager.h"
#include "ckpt/section_file.h"
#include "core/cosearch.h"
#include "guard/fault.h"
#include "guard/policy.h"
#include "nn/module.h"
#include "obs/jsonl.h"

namespace a3cs {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& tag) {
  const auto dir =
      fs::temp_directory_path() / ("a3cs_guard_test_" + tag + "_" +
                                   std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// The same tiny-but-real search the checkpoint tests use: 3 cells, 2 envs,
// rollout 4 => 8 frames per iteration.
core::CoSearchConfig tiny_cosearch_config() {
  core::CoSearchConfig cfg;
  cfg.supernet.space.num_cells = 3;
  cfg.a2c.num_envs = 2;
  cfg.a2c.rollout_len = 4;
  cfg.a2c.loss = rl::no_distill_coefficients();
  cfg.das.samples_per_iter = 2;
  cfg.tau_decay_every_frames = 64;
  return cfg;
}

// Arms the ladder with one rung each so a persistent fault escalates fast:
// error streak 1 -> skip, 2 -> soften, 3 -> rollback.
guard::GuardConfig short_ladder() {
  guard::GuardConfig g;
  g.mode = guard::GuardMode::kHeal;
  g.skip_budget = 1;
  g.soften_budget = 1;
  g.max_rollbacks = 2;
  g.soften_cooldown_iters = 4;
  return g;
}

// Counts guard_event records in a trace by their "kind" field.
std::map<std::string, int> guard_event_kinds(const std::string& trace_path) {
  std::map<std::string, int> kinds;
  for (const obs::JsonValue& ev : obs::parse_jsonl_file(trace_path)) {
    if (ev.string_or("type", "") == "guard_event") {
      ++kinds[ev.string_or("kind", "?")];
    }
  }
  return kinds;
}

// Tests arm the PROCESS-GLOBAL injector; isolate every test on both sides.
struct InjectorGuard {
  InjectorGuard() { guard::FaultInjector::global().reset(); }
  ~InjectorGuard() { guard::FaultInjector::global().reset(); }
};

// The acceptance scenario: NaN gradient, Inf loss and a NaN WEIGHT injected
// mid-run. The first two are transient (one poisoned batch each) and heal
// with a skip; the NaN weight is persistent, so the ladder must escalate
// skip -> soften -> rollback, restore the newest HEALTHY-tagged checkpoint
// (the tips written during the incident are tagged unhealthy) and finish the
// full frame budget with finite parameters.
TEST(GuardRecovery, HealsInjectedFaultsViaRollback) {
  InjectorGuard isolate;
  auto& faults = guard::FaultInjector::global();
  // one_iteration consults the pre-increment counter: a fault armed at I is
  // flagged by the monitor (and traced) as iteration I+1.
  faults.arm(guard::FaultKind::kNanGrad, 5);   // transient, iteration 6
  faults.arm(guard::FaultKind::kInfLoss, 7);   // transient, iteration 8
  faults.arm(guard::FaultKind::kNanParam, 9);  // persistent, iteration 10+

  auto cfg = tiny_cosearch_config();
  cfg.guard = short_ladder();
  cfg.ckpt.dir = temp_dir("heal");
  cfg.ckpt.every_iters = 2;
  cfg.ckpt.keep = 8;
  cfg.obs.trace_enabled = true;
  cfg.obs.trace_every = 1;
  cfg.obs.trace_path = cfg.ckpt.dir + "/trace.jsonl";

  core::CoSearchEngine engine("Catch", cfg, nullptr);
  engine.run(30 * 8);

  // The run completed its budget and the weights came out clean — the NaN
  // weight from iteration 10 was healed by restoring checkpoint 4 (tips 6,
  // 8, 10 were all written during faulted iterations and tagged unhealthy).
  EXPECT_EQ(engine.iterations(), 30);
  EXPECT_TRUE(nn::param_norm_stats(engine.net().parameters()).finite);

  // Every rung left its trace: one skip per transient fault plus one for the
  // first NaN-weight iteration, then soften, then rollback.
  const auto kinds = guard_event_kinds(cfg.obs.trace_path);
  EXPECT_EQ(kinds.count("verdict"), 1u);
  EXPECT_EQ(kinds.at("skip"), 3) << "iterations 6, 8 and 10";
  EXPECT_EQ(kinds.at("soften"), 1) << "iteration 11";
  EXPECT_EQ(kinds.at("rollback"), 1) << "iteration 12";
  EXPECT_EQ(kinds.at("rollback_done"), 1);
  EXPECT_EQ(kinds.count("abort_dump"), 0u);

  // The ring was rewound with the engine: everything newer than the restore
  // point was dropped, then repopulated by the healthy replay.
  ckpt::CheckpointManager mgr(cfg.ckpt);
  ckpt::SectionReader tip;
  EXPECT_GE(mgr.load_newest_valid(&tip, nullptr, /*require_healthy=*/true),
            0);
  fs::remove_all(cfg.ckpt.dir);
}

// Negative control (guard off): the identical NaN-weight fault poisons the
// unguarded run for good — proof the injection corrupts the real data path
// and that the recovery above is the guard's doing, not luck.
TEST(GuardRecovery, UnguardedRunStaysPoisoned) {
  InjectorGuard isolate;
  guard::FaultInjector::global().arm(guard::FaultKind::kNanParam, 7);

  auto cfg = tiny_cosearch_config();
  cfg.guard.mode = guard::GuardMode::kOff;

  core::CoSearchEngine engine("Catch", cfg, nullptr);
  engine.run(16 * 8);

  EXPECT_EQ(engine.iterations(), 16);
  EXPECT_FALSE(nn::param_norm_stats(engine.net().parameters()).finite)
      << "the injected NaN weight should survive an unguarded run";
}

// A rollback that lands on a TORN checkpoint tip must fall back further: the
// newest tip is unhealthy-tagged, the next one is truncated mid-file (CRC
// fails), and only the third is both valid and healthy.
TEST(GuardRecovery, RollbackFallsBackPastTruncatedTip) {
  InjectorGuard isolate;
  auto& faults = guard::FaultInjector::global();
  faults.arm(guard::FaultKind::kTruncCkpt, 7);  // tears the iteration-8 tip
  faults.arm(guard::FaultKind::kNanParam, 9);   // persistent from iter 10

  auto cfg = tiny_cosearch_config();
  cfg.guard = short_ladder();
  cfg.ckpt.dir = temp_dir("torn");
  cfg.ckpt.every_iters = 2;
  cfg.ckpt.keep = 8;
  cfg.obs.trace_enabled = true;
  cfg.obs.trace_every = 1;
  cfg.obs.trace_path = cfg.ckpt.dir + "/trace.jsonl";

  core::CoSearchEngine engine("Catch", cfg, nullptr);
  engine.run(20 * 8);

  EXPECT_EQ(engine.iterations(), 20);
  EXPECT_TRUE(nn::param_norm_stats(engine.net().parameters()).finite);

  // The rollback_done record names the restore point: iteration 6, past the
  // unhealthy tip at 10 AND the torn tip at 8.
  std::int64_t restored_at = -1;
  for (const obs::JsonValue& ev :
       obs::parse_jsonl_file(cfg.obs.trace_path)) {
    if (ev.string_or("type", "") == "guard_event" &&
        ev.string_or("kind", "") == "rollback_done") {
      restored_at = static_cast<std::int64_t>(ev.number_or("iter", -1.0));
    }
  }
  EXPECT_EQ(restored_at, 6);
  fs::remove_all(cfg.ckpt.dir);
}

// With every budget at zero the first unhealable error tops out the ladder:
// the engine throws GuardAbort and leaves an unhealthy-tagged diagnostic
// dump for post-mortem restore.
TEST(GuardRecovery, ExhaustedBudgetsAbortWithDiagnosticDump) {
  InjectorGuard isolate;
  guard::FaultInjector::global().arm(guard::FaultKind::kNanParam, 3);

  auto cfg = tiny_cosearch_config();
  cfg.guard.mode = guard::GuardMode::kHeal;
  cfg.guard.skip_budget = 0;
  cfg.guard.soften_budget = 0;
  cfg.guard.max_rollbacks = 0;
  cfg.ckpt.dir = temp_dir("abort");
  cfg.ckpt.every_iters = 2;

  core::CoSearchEngine engine("Catch", cfg, nullptr);
  EXPECT_THROW(engine.run(16 * 8), guard::GuardAbort);

  const std::string dump = cfg.ckpt.dir + "/abort-dump.a3ck";
  ASSERT_TRUE(fs::exists(dump));
  const auto reader = ckpt::SectionReader::from_file(dump);
  EXPECT_FALSE(reader.healthy())
      << "the abort dump must never win a healthy-checkpoint scan";
  fs::remove_all(cfg.ckpt.dir);
}

}  // namespace
}  // namespace a3cs
