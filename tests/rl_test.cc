#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "nn/zoo.h"
#include "rl/a2c.h"
#include "rl/eval.h"
#include "rl/losses.h"
#include "rl/rollout.h"
#include "rl/teacher.h"
#include "tensor/ops.h"

namespace a3cs {
namespace {

using nn::Shape;
using nn::Tensor;

// ---------------------------------------------------------- targets -------

TEST(Targets, SingleEnvNoBootstrapOnDone) {
  // Rollout of 3 steps, one env, episode ends at step 1.
  std::vector<std::vector<double>> rewards = {{1.0}, {2.0}, {3.0}};
  std::vector<std::vector<bool>> dones = {{false}, {true}, {false}};
  Tensor values(Shape::mat(3, 1), {0.5f, 0.25f, 0.125f});
  Tensor boot(Shape::mat(1, 1), {10.0f});
  const auto t = rl::compute_targets(rewards, dones, values, boot, 0.5);
  // Step 2: R = 3 + 0.5*10 = 8. Step 1 (done): R = 2. Step 0: R = 1 + 0.5*2.
  EXPECT_FLOAT_EQ(t.returns[2], 8.0f);
  EXPECT_FLOAT_EQ(t.returns[1], 2.0f);
  EXPECT_FLOAT_EQ(t.returns[0], 2.0f);
  EXPECT_FLOAT_EQ(t.advantages[0], 2.0f - 0.5f);
  EXPECT_FLOAT_EQ(t.advantages[1], 2.0f - 0.25f);
  EXPECT_FLOAT_EQ(t.advantages[2], 8.0f - 0.125f);
}

TEST(Targets, MultiEnvLayout) {
  // 2 steps x 2 envs, no dones; layout is step-major.
  std::vector<std::vector<double>> rewards = {{1.0, 10.0}, {2.0, 20.0}};
  std::vector<std::vector<bool>> dones = {{false, false}, {false, false}};
  Tensor values(Shape::mat(4, 1), {0, 0, 0, 0});
  Tensor boot(Shape::mat(2, 1), {4.0f, 40.0f});
  const auto t = rl::compute_targets(rewards, dones, values, boot, 1.0);
  EXPECT_FLOAT_EQ(t.returns[0], 1 + 2 + 4);    // env0 step0
  EXPECT_FLOAT_EQ(t.returns[1], 10 + 20 + 40); // env1 step0
  EXPECT_FLOAT_EQ(t.returns[2], 2 + 4);        // env0 step1
  EXPECT_FLOAT_EQ(t.returns[3], 20 + 40);      // env1 step1
}

TEST(Targets, GammaZeroGivesImmediateRewards) {
  std::vector<std::vector<double>> rewards = {{3.0}, {5.0}};
  std::vector<std::vector<bool>> dones = {{false}, {false}};
  Tensor values(Shape::mat(2, 1));
  Tensor boot(Shape::mat(1, 1), {100.0f});
  const auto t = rl::compute_targets(rewards, dones, values, boot, 0.0);
  EXPECT_FLOAT_EQ(t.returns[0], 3.0f);
  EXPECT_FLOAT_EQ(t.returns[1], 5.0f);
}

TEST(Targets, TdErrorModeMatchesPaperEquation) {
  // A_t = r_t + gamma * V(s_{t+1}) - V(s_t), no multi-step accumulation.
  std::vector<std::vector<double>> rewards = {{1.0}, {2.0}};
  std::vector<std::vector<bool>> dones = {{false}, {false}};
  Tensor values(Shape::mat(2, 1), {0.5f, 0.25f});
  Tensor boot(Shape::mat(1, 1), {4.0f});
  rl::AdvantageConfig adv;
  adv.mode = rl::AdvantageConfig::Mode::kTdError;
  const auto t = rl::compute_targets(rewards, dones, values, boot, 0.5, adv);
  EXPECT_FLOAT_EQ(t.advantages[0], 1.0f + 0.5f * 0.25f - 0.5f);
  EXPECT_FLOAT_EQ(t.advantages[1], 2.0f + 0.5f * 4.0f - 0.25f);
  EXPECT_FLOAT_EQ(t.returns[0], 1.0f + 0.5f * 0.25f);
  EXPECT_FLOAT_EQ(t.returns[1], 2.0f + 0.5f * 4.0f);
}

TEST(Targets, GaeLambdaOneEqualsNStep) {
  std::vector<std::vector<double>> rewards = {{1.0, -1.0}, {2.0, 0.5},
                                              {0.0, 3.0}};
  std::vector<std::vector<bool>> dones = {{false, false}, {true, false},
                                          {false, false}};
  Tensor values(Shape::mat(6, 1), {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f});
  Tensor boot(Shape::mat(2, 1), {1.5f, -0.5f});
  rl::AdvantageConfig gae1;
  gae1.mode = rl::AdvantageConfig::Mode::kGae;
  gae1.gae_lambda = 1.0;
  const auto a = rl::compute_targets(rewards, dones, values, boot, 0.9);
  const auto b = rl::compute_targets(rewards, dones, values, boot, 0.9, gae1);
  for (std::size_t i = 0; i < a.advantages.size(); ++i) {
    EXPECT_NEAR(a.advantages[i], b.advantages[i], 1e-5) << i;
    EXPECT_NEAR(a.returns[i], b.returns[i], 1e-5) << i;
  }
}

TEST(Targets, GaeLambdaZeroEqualsTdError) {
  std::vector<std::vector<double>> rewards = {{1.0}, {2.0}, {3.0}};
  std::vector<std::vector<bool>> dones = {{false}, {true}, {false}};
  Tensor values(Shape::mat(3, 1), {0.5f, 0.25f, 0.125f});
  Tensor boot(Shape::mat(1, 1), {10.0f});
  rl::AdvantageConfig gae0;
  gae0.mode = rl::AdvantageConfig::Mode::kGae;
  gae0.gae_lambda = 0.0;
  rl::AdvantageConfig td;
  td.mode = rl::AdvantageConfig::Mode::kTdError;
  const auto a = rl::compute_targets(rewards, dones, values, boot, 0.7, gae0);
  const auto b = rl::compute_targets(rewards, dones, values, boot, 0.7, td);
  for (std::size_t i = 0; i < a.advantages.size(); ++i) {
    EXPECT_FLOAT_EQ(a.advantages[i], b.advantages[i]) << i;
  }
}

TEST(Targets, GaeInterpolatesBetweenExtremes) {
  std::vector<std::vector<double>> rewards = {{1.0}, {1.0}, {1.0}};
  std::vector<std::vector<bool>> dones = {{false}, {false}, {false}};
  Tensor values(Shape::mat(3, 1), {0.0f, 0.0f, 0.0f});
  Tensor boot(Shape::mat(1, 1), {0.0f});
  auto adv_at = [&](double lambda) {
    rl::AdvantageConfig cfg;
    cfg.mode = rl::AdvantageConfig::Mode::kGae;
    cfg.gae_lambda = lambda;
    return rl::compute_targets(rewards, dones, values, boot, 1.0, cfg)
        .advantages[0];
  };
  const float lo = adv_at(0.0), mid = adv_at(0.5), hi = adv_at(1.0);
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
  EXPECT_FLOAT_EQ(lo, 1.0f);   // one-step td-error
  EXPECT_FLOAT_EQ(hi, 3.0f);   // full 3-step return
}

TEST(Targets, DoneCutsGaePropagation) {
  std::vector<std::vector<double>> rewards = {{0.0}, {100.0}};
  std::vector<std::vector<bool>> dones = {{true}, {false}};
  Tensor values(Shape::mat(2, 1), {0.0f, 0.0f});
  Tensor boot(Shape::mat(1, 1), {0.0f});
  rl::AdvantageConfig gae;
  gae.mode = rl::AdvantageConfig::Mode::kGae;
  gae.gae_lambda = 0.95;
  const auto t = rl::compute_targets(rewards, dones, values, boot, 0.99, gae);
  // Step 0 ends its episode: the +100 of step 1 must not leak backwards.
  EXPECT_FLOAT_EQ(t.advantages[0], 0.0f);
}

// --------------------------------------------------------- task loss ------

// Numerically validates dL/dlogits via central differences on a scalar-ized
// loss recomputed from the definition.
double loss_scalar(const Tensor& logits, const std::vector<int>& actions,
                   const std::vector<float>& advantages,
                   const std::vector<float>& returns, const Tensor& values,
                   const rl::LossCoefficients& coef, const Tensor* tea_probs,
                   const Tensor* tea_values) {
  const int b = logits.shape()[0], a = logits.shape()[1];
  Tensor probs(logits.shape()), logp(logits.shape());
  tensor::softmax_rows(logits, probs);
  tensor::log_softmax_rows(logits, logp);
  double total = 0.0;
  for (int i = 0; i < b; ++i) {
    total += -static_cast<double>(advantages[static_cast<std::size_t>(i)]) *
             logp.at2(i, static_cast<int>(actions[static_cast<std::size_t>(i)]));
    const double v = values.at2(i, 0);
    total += coef.value_coef * 0.5 *
             (v - returns[static_cast<std::size_t>(i)]) *
             (v - returns[static_cast<std::size_t>(i)]);
    for (int j = 0; j < a; ++j) {
      total += coef.entropy_beta * probs.at2(i, j) * logp.at2(i, j);
    }
    if (tea_probs != nullptr && coef.distill_actor != 0.0) {
      for (int j = 0; j < a; ++j) {
        const double q = tea_probs->at2(i, j);
        if (q > 1e-9) {
          total += coef.distill_actor * q * (std::log(q) - logp.at2(i, j));
        }
      }
    }
    if (tea_values != nullptr && coef.distill_critic != 0.0) {
      const double dv = v - tea_values->at2(i, 0);
      total += coef.distill_critic * 0.5 * dv * dv;
    }
  }
  return total / b;
}

class TaskLossGradTest : public ::testing::TestWithParam<bool> {};

TEST_P(TaskLossGradTest, MatchesFiniteDifference) {
  const bool with_distill = GetParam();
  util::Rng rng(123);
  const int b = 4, a = 5;
  Tensor logits(Shape::mat(b, a));
  Tensor values(Shape::mat(b, 1));
  Tensor tea_logits(Shape::mat(b, a));
  Tensor tea_values(Shape::mat(b, 1));
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    logits[i] = static_cast<float>(rng.uniform(-1, 1));
    tea_logits[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  for (int i = 0; i < b; ++i) {
    values.at2(i, 0) = static_cast<float>(rng.uniform(-1, 1));
    tea_values.at2(i, 0) = static_cast<float>(rng.uniform(-1, 1));
  }
  Tensor tea_probs(tea_logits.shape());
  tensor::softmax_rows(tea_logits, tea_probs);

  std::vector<int> actions = {0, 2, 4, 1};
  std::vector<float> advantages = {0.5f, -1.0f, 2.0f, 0.1f};
  std::vector<float> returns = {1.0f, 0.0f, -0.5f, 2.0f};

  rl::LossCoefficients coef;
  coef.entropy_beta = 0.01;
  coef.distill_actor = with_distill ? 0.1 : 0.0;
  coef.distill_critic = with_distill ? 0.001 : 0.0;

  rl::LossInputs in;
  in.logits = &logits;
  in.values = &values;
  in.actions = &actions;
  in.advantages = &advantages;
  in.returns = &returns;
  if (with_distill) {
    in.teacher_probs = &tea_probs;
    in.teacher_values = &tea_values;
  }
  rl::LossStats stats;
  const auto grads = rl::task_loss(in, coef, &stats);

  const Tensor* tp = with_distill ? &tea_probs : nullptr;
  const Tensor* tv = with_distill ? &tea_values : nullptr;

  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + static_cast<float>(eps);
    const double lp = loss_scalar(logits, actions, advantages, returns,
                                  values, coef, tp, tv);
    logits[i] = orig - static_cast<float>(eps);
    const double lm = loss_scalar(logits, actions, advantages, returns,
                                  values, coef, tp, tv);
    logits[i] = orig;
    EXPECT_NEAR(grads.dlogits[i], (lp - lm) / (2 * eps), 2e-4) << "logit " << i;
  }
  for (int i = 0; i < b; ++i) {
    const float orig = values.at2(i, 0);
    values.at2(i, 0) = orig + static_cast<float>(eps);
    const double lp = loss_scalar(logits, actions, advantages, returns,
                                  values, coef, tp, tv);
    values.at2(i, 0) = orig - static_cast<float>(eps);
    const double lm = loss_scalar(logits, actions, advantages, returns,
                                  values, coef, tp, tv);
    values.at2(i, 0) = orig;
    EXPECT_NEAR(grads.dvalue.at2(i, 0), (lp - lm) / (2 * eps), 2e-4)
        << "value " << i;
  }

  // The scalar stats must agree with the reference loss.
  const double ref = loss_scalar(logits, actions, advantages, returns, values,
                                 coef, tp, tv);
  EXPECT_NEAR(stats.total, ref, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(WithAndWithoutDistill, TaskLossGradTest,
                         ::testing::Bool());

TEST(TaskLoss, DistillRequiresTeacherSignals) {
  Tensor logits(Shape::mat(1, 2));
  Tensor values(Shape::mat(1, 1));
  std::vector<int> actions = {0};
  std::vector<float> adv = {1.0f}, ret = {1.0f};
  rl::LossInputs in;
  in.logits = &logits;
  in.values = &values;
  in.actions = &actions;
  in.advantages = &adv;
  in.returns = &ret;
  rl::LossCoefficients coef;
  coef.distill_actor = 0.1;
  EXPECT_THROW(rl::task_loss(in, coef), std::runtime_error);
}

TEST(TaskLoss, PerfectTeacherMatchGivesZeroDistillGradient) {
  // When the student equals the teacher the distillation terms vanish.
  util::Rng rng(7);
  Tensor logits(Shape::mat(2, 3));
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    logits[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  Tensor probs(logits.shape());
  tensor::softmax_rows(logits, probs);
  Tensor values(Shape::mat(2, 1), {0.3f, -0.2f});

  std::vector<int> actions = {0, 1};
  std::vector<float> adv = {0.0f, 0.0f};  // kill the policy-gradient term
  std::vector<float> ret = {0.3f, -0.2f}; // kill the value term

  rl::LossCoefficients coef;
  coef.entropy_beta = 0.0;
  coef.distill_actor = 1.0;
  coef.distill_critic = 1.0;

  rl::LossInputs in;
  in.logits = &logits;
  in.values = &values;
  in.actions = &actions;
  in.advantages = &adv;
  in.returns = &ret;
  in.teacher_probs = &probs;
  in.teacher_values = &values;
  rl::LossStats stats;
  const auto grads = rl::task_loss(in, coef, &stats);
  EXPECT_LT(grads.dlogits.abs_max(), 1e-6f);
  EXPECT_LT(grads.dvalue.abs_max(), 1e-6f);
  EXPECT_NEAR(stats.distill_actor, 0.0, 1e-6);
  EXPECT_NEAR(stats.distill_critic, 0.0, 1e-6);
}

TEST(TaskLoss, OneHotLogitsStayFinite) {
  // A collapsed policy: one logit dominates by more than float's exp range,
  // driving the other probabilities to exact 0 and their log-softmax to
  // -inf. Every loss term and every gradient must stay finite (regression
  // for the 0 * -inf NaN in the entropy term and the -inf policy term when
  // the taken action has zero probability).
  Tensor logits(Shape::mat(2, 4));
  for (std::int64_t i = 0; i < logits.numel(); ++i) logits[i] = -200.0f;
  logits.at2(0, 1) = 200.0f;
  logits.at2(1, 3) = 200.0f;
  Tensor values(Shape::mat(2, 1), {0.5f, -0.5f});
  std::vector<int> actions = {0, 3};  // row 0 took a zero-probability action
  std::vector<float> adv = {1.5f, -0.5f};
  std::vector<float> ret = {1.0f, 0.0f};

  rl::LossCoefficients coef;
  coef.entropy_beta = 0.01;
  rl::LossInputs in;
  in.logits = &logits;
  in.values = &values;
  in.actions = &actions;
  in.advantages = &adv;
  in.returns = &ret;
  rl::LossStats stats;
  const auto grads = rl::task_loss(in, coef, &stats);
  EXPECT_TRUE(std::isfinite(stats.total)) << stats.total;
  EXPECT_TRUE(std::isfinite(stats.policy)) << stats.policy;
  EXPECT_TRUE(std::isfinite(stats.entropy)) << stats.entropy;
  for (std::int64_t i = 0; i < grads.dlogits.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(grads.dlogits[i])) << "dlogit " << i;
  }
  for (std::int64_t i = 0; i < grads.dvalue.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(grads.dvalue[i])) << "dvalue " << i;
  }
}

TEST(TaskLoss, OneHotTeacherDistillationStaysFinite) {
  // A (near) one-hot TEACHER against a collapsed student: the KL term sums
  // q * (log q - log p) where log p would be -inf without the clamp.
  Tensor logits(Shape::mat(1, 3));
  logits.at2(0, 0) = 200.0f;
  logits.at2(0, 1) = -200.0f;
  logits.at2(0, 2) = -200.0f;
  Tensor tea_probs(Shape::mat(1, 3), {0.0f, 1.0f, 0.0f});
  Tensor values(Shape::mat(1, 1), {0.1f});
  Tensor tea_values(Shape::mat(1, 1), {0.2f});
  std::vector<int> actions = {0};
  std::vector<float> adv = {0.5f}, ret = {0.3f};

  rl::LossCoefficients coef;
  coef.entropy_beta = 0.01;
  coef.distill_actor = 0.1;
  coef.distill_critic = 0.001;
  rl::LossInputs in;
  in.logits = &logits;
  in.values = &values;
  in.actions = &actions;
  in.advantages = &adv;
  in.returns = &ret;
  in.teacher_probs = &tea_probs;
  in.teacher_values = &tea_values;
  rl::LossStats stats;
  const auto grads = rl::task_loss(in, coef, &stats);
  EXPECT_TRUE(std::isfinite(stats.total)) << stats.total;
  EXPECT_TRUE(std::isfinite(stats.distill_actor)) << stats.distill_actor;
  for (std::int64_t i = 0; i < grads.dlogits.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(grads.dlogits[i])) << "dlogit " << i;
  }
}

TEST(TaskLoss, AllEqualLogitsMatchUniformEntropy) {
  // The opposite degenerate shape: a perfectly flat policy. Nothing clamps
  // here — the entropy must equal log(A) exactly and the gradients must be
  // finite (guards the clamp threshold against being set too high).
  const int a = 5;
  Tensor logits(Shape::mat(1, a));  // zeros = all-equal
  Tensor values(Shape::mat(1, 1), {0.0f});
  std::vector<int> actions = {2};
  std::vector<float> adv = {1.0f}, ret = {0.5f};

  rl::LossCoefficients coef;
  coef.entropy_beta = 0.01;
  rl::LossInputs in;
  in.logits = &logits;
  in.values = &values;
  in.actions = &actions;
  in.advantages = &adv;
  in.returns = &ret;
  rl::LossStats stats;
  const auto grads = rl::task_loss(in, coef, &stats);
  EXPECT_NEAR(stats.entropy, std::log(static_cast<double>(a)), 1e-6);
  for (std::int64_t i = 0; i < grads.dlogits.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(grads.dlogits[i])) << "dlogit " << i;
  }
}

TEST(Coefficients, PaperValues) {
  const auto c = rl::paper_distill_coefficients();
  EXPECT_DOUBLE_EQ(c.entropy_beta, 1e-2);
  EXPECT_DOUBLE_EQ(c.distill_actor, 1e-1);
  EXPECT_DOUBLE_EQ(c.distill_critic, 1e-3);
  const auto p = rl::policy_only_distill_coefficients();
  EXPECT_DOUBLE_EQ(p.distill_actor, 1e-1);
  EXPECT_DOUBLE_EQ(p.distill_critic, 0.0);
  const auto n = rl::no_distill_coefficients();
  EXPECT_DOUBLE_EQ(n.distill_actor, 0.0);
  EXPECT_DOUBLE_EQ(n.distill_critic, 0.0);
}

// ----------------------------------------------------------- rollout ------

TEST(Rollout, CollectsRequestedLength) {
  arcade::VecEnv envs("Catch", 3, 500);
  auto probe = arcade::make_game("Catch", 1);
  util::Rng rng(1);
  auto agent = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                   probe->num_actions(), rng);
  rl::RolloutCollector collector(envs, util::Rng(2));
  const auto rollout = collector.collect(*agent.net, 5);
  EXPECT_EQ(rollout.length(), 5);
  EXPECT_EQ(rollout.num_envs(), 3);
  EXPECT_EQ(rollout.actions.size(), 5u);
  EXPECT_EQ(rollout.rewards.size(), 5u);
  EXPECT_EQ(collector.frames(), 15);
  const Tensor stacked = rollout.stacked_obs();
  EXPECT_EQ(stacked.shape(), tensor::Shape::nchw(15, 3, 12, 12));
}

TEST(Rollout, StackedObsPreservesStepMajorOrder) {
  arcade::VecEnv envs("Catch", 2, 500);
  auto probe = arcade::make_game("Catch", 1);
  util::Rng rng(1);
  auto agent = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                   probe->num_actions(), rng);
  rl::RolloutCollector collector(envs, util::Rng(2));
  const auto rollout = collector.collect(*agent.net, 3);
  const Tensor stacked = rollout.stacked_obs();
  const std::int64_t frame = rollout.obs[0].numel() / 2;
  for (int t = 0; t < 3; ++t) {
    for (int e = 0; e < 2; ++e) {
      for (std::int64_t i = 0; i < frame; ++i) {
        ASSERT_FLOAT_EQ(stacked[(t * 2 + e) * frame + i],
                        rollout.obs[static_cast<std::size_t>(t)][e * frame + i]);
      }
    }
  }
}

TEST(SampleActions, FollowsPolicyDistribution) {
  Tensor logits(Shape::mat(1, 3), {0.0f, 0.0f, 5.0f});  // ~99% action 2
  util::Rng rng(3);
  int count2 = 0;
  for (int i = 0; i < 500; ++i) {
    if (rl::sample_actions(logits, rng)[0] == 2) ++count2;
  }
  EXPECT_GT(count2, 450);
}

// --------------------------------------------------------------- A2C ------

TEST(A2c, LearnsCatch) {
  auto probe = arcade::make_game("Catch", 1);
  util::Rng rng(11);
  auto agent = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                   probe->num_actions(), rng);

  // Untrained baseline under the GREEDY policy: an untrained argmax policy
  // degenerates to a constant action (paddle pinned to a wall), while a
  // trained one tracks pellets — a much sharper learning signal than the
  // stochastic evaluation (random paddle motion already catches plenty).
  rl::EvalConfig ecfg;
  ecfg.episodes = 10;
  ecfg.sample_actions = false;
  const double before = rl::evaluate_agent(*agent.net, "Catch", ecfg).mean_score;

  arcade::VecEnv envs("Catch", 16, 123);
  rl::A2cConfig cfg;
  cfg.loss = rl::no_distill_coefficients();
  cfg.num_envs = 16;
  cfg.lr_start = 2e-3;  // scaled-down runs learn faster at a higher lr
  cfg.lr_end = 2e-4;
  rl::A2cTrainer trainer(*agent.net, envs, cfg);
  trainer.train(40000);

  const double after = rl::evaluate_agent(*agent.net, "Catch", ecfg).mean_score;
  EXPECT_GT(after, before + 4.0)
      << "A2C failed to improve on Catch: " << before << " -> " << after;
}

TEST(A2c, UpdateChangesParametersAndReportsStats) {
  auto probe = arcade::make_game("Catch", 1);
  util::Rng rng(12);
  auto agent = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                   probe->num_actions(), rng);
  arcade::VecEnv envs("Catch", 2, 9);
  rl::RolloutCollector collector(envs, util::Rng(10));
  const auto rollout = collector.collect(*agent.net, 5);

  std::vector<Tensor> before;
  for (auto* p : agent.net->parameters()) before.push_back(p->value);
  rl::A2cConfig cfg;
  cfg.loss = rl::no_distill_coefficients();
  nn::RmsProp opt(1e-3);
  const auto stats = rl::a2c_update(*agent.net, rollout, cfg, opt, nullptr);
  EXPECT_GE(stats.loss.entropy, 0.0);
  EXPECT_GT(stats.grad_norm, 0.0f);
  double delta = 0.0;
  const auto params = agent.net->parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    delta += (params[i]->value - before[i]).norm();
  }
  EXPECT_GT(delta, 0.0);
}

TEST(A2c, DistillationPullsStudentTowardTeacher) {
  auto probe = arcade::make_game("Catch", 1);
  util::Rng rng1(13), rng2(14);
  auto student = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                     probe->num_actions(), rng1);
  auto teacher = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                     probe->num_actions(), rng2);

  // Give the teacher a sharply non-uniform policy so the starting KL is
  // meaningful (fresh policy heads are both near-uniform -> KL ~ 0).
  for (nn::Parameter* p : teacher.net->parameters()) {
    if (p->name == "policy_head.weight") p->value *= 50.0f;
  }

  arcade::VecEnv envs("Catch", 4, 77);
  rl::A2cConfig cfg;
  cfg.loss = rl::paper_distill_coefficients();
  cfg.loss.distill_actor = 10.0;  // exaggerate to make the pull measurable
  rl::RolloutCollector collector(envs, util::Rng(15));

  auto kl_to_teacher = [&](const Tensor& obs) {
    const auto s = student.net->forward(obs);
    const auto t = teacher.net->forward(obs);
    Tensor sp(s.logits.shape()), tp(t.logits.shape());
    tensor::softmax_rows(s.logits, sp);
    tensor::softmax_rows(t.logits, tp);
    double kl = 0.0;
    for (int i = 0; i < sp.shape()[0]; ++i) {
      for (int j = 0; j < sp.shape()[1]; ++j) {
        const double q = tp.at2(i, j);
        if (q > 1e-9) kl += q * std::log(q / std::max(1e-9f, sp.at2(i, j)));
      }
    }
    return kl / sp.shape()[0];
  };

  const auto probe_rollout = collector.collect(*student.net, 5);
  const Tensor probe_obs = probe_rollout.stacked_obs();
  const double kl_before = kl_to_teacher(probe_obs);

  nn::RmsProp opt(1e-3);
  for (int i = 0; i < 60; ++i) {
    const auto rollout = collector.collect(*student.net, 5);
    rl::a2c_update(*student.net, rollout, cfg, opt, teacher.net.get());
  }
  const double kl_after = kl_to_teacher(probe_obs);
  EXPECT_LT(kl_after, kl_before * 0.8);
}

// -------------------------------------------------------------- eval ------

TEST(Eval, ReportsRequestedEpisodeCount) {
  auto probe = arcade::make_game("Catch", 1);
  util::Rng rng(16);
  auto agent = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                   probe->num_actions(), rng);
  rl::EvalConfig cfg;
  cfg.episodes = 5;
  const auto r = rl::evaluate_agent(*agent.net, "Catch", cfg);
  EXPECT_EQ(r.episodes, 5);
  EXPECT_LE(r.min_score, r.mean_score);
  EXPECT_GE(r.max_score, r.mean_score);
}

TEST(Eval, DeterministicForSameSeed) {
  auto probe = arcade::make_game("Catch", 1);
  util::Rng rng(17);
  auto agent = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                   probe->num_actions(), rng);
  rl::EvalConfig cfg;
  cfg.episodes = 3;
  cfg.seed = 555;
  const auto a = rl::evaluate_agent(*agent.net, "Catch", cfg);
  const auto b = rl::evaluate_agent(*agent.net, "Catch", cfg);
  EXPECT_DOUBLE_EQ(a.mean_score, b.mean_score);
}

// ------------------------------------------------------------ teacher -----

TEST(Teacher, TrainAndCacheRoundTrip) {
  rl::TeacherConfig cfg;
  cfg.train_frames = 400;  // smoke-scale
  cfg.cache_dir = ::testing::TempDir() + "/a3cs_teachers";
  std::filesystem::remove_all(cfg.cache_dir);

  auto t1 = rl::get_or_train_teacher("Catch", cfg);
  ASSERT_NE(t1, nullptr);
  // Second call must load the cached checkpoint and produce identical
  // outputs.
  auto t2 = rl::get_or_train_teacher("Catch", cfg);
  Tensor obs(Shape::nchw(1, 3, 12, 12), 0.25f);
  const auto y1 = t1->forward(obs);
  const auto y2 = t2->forward(obs);
  for (std::int64_t i = 0; i < y1.logits.numel(); ++i) {
    EXPECT_FLOAT_EQ(y1.logits[i], y2.logits[i]);
  }
  std::filesystem::remove_all(cfg.cache_dir);
}

}  // namespace
}  // namespace a3cs
