// Unit tests for the crash-safe checkpoint subsystem (src/ckpt) and the
// per-layer state serialization that feeds it: CRC32, atomic file
// replacement, the sectioned container, the retention ring with corrupt-tip
// fallback, RNG/optimizer/env state round-trips, and full-engine
// save/restore bit-exactness. The cross-process kill-and-resume fault
// injection lives in ckpt_resume_test.cc.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "accel/config_io.h"
#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "arcade/wrappers.h"
#include "ckpt/manager.h"
#include "ckpt/section_file.h"
#include "ckpt/signal.h"
#include "core/cosearch.h"
#include "das/das.h"
#include "nn/optim.h"
#include "nn/zoo.h"
#include "rl/a2c.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/state_io.h"

namespace a3cs {
namespace {

namespace fs = std::filesystem;
namespace sio = util::sio;

std::string temp_dir(const std::string& tag) {
  const auto dir =
      fs::temp_directory_path() / ("a3cs_ckpt_test_" + tag + "_" +
                                   std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// ---------------------------------------------------------------- crc32

TEST(Crc32, KnownVectors) {
  // The standard CRC-32/IEEE check value.
  EXPECT_EQ(util::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(util::crc32("", 0), 0x00000000u);
  EXPECT_EQ(util::crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t crc = 0;
  for (char c : data) crc = util::crc32_update(crc, &c, 1);
  EXPECT_EQ(crc, util::crc32(data.data(), data.size()));
}

// ---------------------------------------------------------- atomic file

TEST(AtomicFile, WriteThenReadRoundTrips) {
  const std::string dir = temp_dir("atomic");
  const std::string path = dir + "/blob.bin";
  const std::string bytes("hello\0world", 11);
  util::atomic_write_file(path, bytes);
  EXPECT_EQ(util::read_file_bytes(path), bytes);
  // Overwrite replaces the full content, never appends.
  util::atomic_write_file(path, "x");
  EXPECT_EQ(util::read_file_bytes(path), "x");
  fs::remove_all(dir);
}

TEST(AtomicFile, NoTempFileLeftBehind) {
  const std::string dir = temp_dir("atomic2");
  util::atomic_write_file(dir + "/a.bin", "data");
  int entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir)) ++entries;
  EXPECT_EQ(entries, 1);
  fs::remove_all(dir);
}

// ------------------------------------------------------------- state_io

TEST(StateIo, ScalarsAndVectorsRoundTrip) {
  std::ostringstream out;
  sio::put_u8(out, 0xAB);
  sio::put_u32(out, 0xDEADBEEFu);
  sio::put_u64(out, 0x0123456789ABCDEFull);
  sio::put_i32(out, -42);
  sio::put_i64(out, -1234567890123LL);
  sio::put_f32(out, 1.5f);
  sio::put_f64(out, -2.25);
  sio::put_bool(out, true);
  sio::put_string(out, "sect\0ion" + std::string(1, '\0'));
  sio::put_i32_vec(out, {1, -2, 3});
  sio::put_f64_vec(out, {0.5, -0.25});
  sio::put_bool_vec(out, {true, false, true, true});

  std::istringstream in(out.str());
  EXPECT_EQ(sio::get_u8(in), 0xAB);
  EXPECT_EQ(sio::get_u32(in), 0xDEADBEEFu);
  EXPECT_EQ(sio::get_u64(in), 0x0123456789ABCDEFull);
  EXPECT_EQ(sio::get_i32(in), -42);
  EXPECT_EQ(sio::get_i64(in), -1234567890123LL);
  EXPECT_EQ(sio::get_f32(in), 1.5f);
  EXPECT_EQ(sio::get_f64(in), -2.25);
  EXPECT_EQ(sio::get_bool(in), true);
  EXPECT_EQ(sio::get_string(in), "sect\0ion" + std::string(1, '\0'));
  EXPECT_EQ(sio::get_i32_vec(in), (std::vector<int>{1, -2, 3}));
  EXPECT_EQ(sio::get_f64_vec(in), (std::vector<double>{0.5, -0.25}));
  EXPECT_EQ(sio::get_bool_vec(in),
            (std::vector<bool>{true, false, true, true}));
}

TEST(StateIo, TruncationThrows) {
  std::ostringstream out;
  sio::put_u64(out, 7);
  std::string bytes = out.str();
  bytes.resize(bytes.size() - 1);
  std::istringstream in(bytes);
  EXPECT_THROW(sio::get_u64(in), std::runtime_error);
}

TEST(StateIo, RngStateRoundTripsMidStream) {
  util::Rng a(1234);
  for (int i = 0; i < 37; ++i) a.uniform();
  a.normal();  // leaves a cached Box-Muller value in flight
  std::ostringstream out;
  sio::put_rng(out, a);
  util::Rng b(999);
  std::istringstream in(out.str());
  sio::get_rng(in, b);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.normal(), b.normal());
  }
}

// --------------------------------------------------------- section file

TEST(SectionFile, RoundTripsMultipleSections) {
  ckpt::SectionWriter w;
  std::ostream& s1 = w.begin_section("alpha");
  sio::put_i32(s1, 7);
  w.end_section();
  w.add_section("beta", std::string("\x00\x01\x02", 3));
  const std::string bytes = w.encode();

  ckpt::SectionReader r(bytes);
  EXPECT_TRUE(r.has("alpha"));
  EXPECT_TRUE(r.has("beta"));
  EXPECT_FALSE(r.has("gamma"));
  auto in = r.stream("alpha");
  EXPECT_EQ(sio::get_i32(in), 7);
  EXPECT_EQ(r.payload("beta"), std::string("\x00\x01\x02", 3));
  EXPECT_EQ(r.section_names(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_THROW(r.stream("gamma"), ckpt::CkptError);
}

TEST(SectionFile, DuplicateSectionNameThrows) {
  ckpt::SectionWriter w;
  w.add_section("dup", "x");
  EXPECT_THROW(w.add_section("dup", "y"), std::runtime_error);
}

TEST(SectionFile, RejectsBadMagicAndVersion) {
  ckpt::SectionWriter w;
  w.add_section("s", "payload");
  std::string bytes = w.encode();
  {
    std::string bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW(ckpt::SectionReader{bad}, ckpt::CkptError);
  }
  {
    // Bumping the version byte invalidates the trailer CRC too, so corrupt
    // the version and recompute nothing: the reader must fail either way.
    std::string bad = bytes;
    bad[4] = static_cast<char>(ckpt::kCkptFormatVersion + 1);
    EXPECT_THROW(ckpt::SectionReader{bad}, ckpt::CkptError);
  }
}

TEST(SectionFile, DetectsPayloadCorruptionAndTruncation) {
  ckpt::SectionWriter w;
  w.add_section("state", std::string(256, 'q'));
  const std::string bytes = w.encode();
  {
    std::string bad = bytes;
    bad[bytes.size() / 2] ^= 0x40;  // flip a payload bit
    EXPECT_THROW(ckpt::SectionReader{bad}, ckpt::CkptError);
  }
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{3}}) {
    EXPECT_THROW(ckpt::SectionReader{bytes.substr(0, cut)}, ckpt::CkptError)
        << "cut at " << cut;
  }
  // Trailing garbage after the trailer must also be rejected.
  EXPECT_THROW(ckpt::SectionReader{bytes + "zz"}, ckpt::CkptError);
}

TEST(SectionFile, HealthTagRoundTrips) {
  ckpt::SectionWriter w;
  w.add_section("s", "payload");
  EXPECT_TRUE(w.healthy());
  {
    ckpt::SectionReader r(w.encode());
    EXPECT_TRUE(r.healthy());
    EXPECT_EQ(r.format_version(), ckpt::kCkptFormatVersion);
  }
  w.set_healthy(false);
  {
    ckpt::SectionReader r(w.encode());
    EXPECT_FALSE(r.healthy());
  }
  // Clearing the tag must not affect structural validity.
  w.set_healthy(true);
  EXPECT_TRUE(ckpt::SectionReader(w.encode()).healthy());
}

// -------------------------------------------------------------- manager

ckpt::SectionWriter tiny_writer(int marker) {
  ckpt::SectionWriter w;
  std::ostream& s = w.begin_section("m");
  sio::put_i32(s, marker);
  w.end_section();
  return w;
}

TEST(CheckpointManager, RingPrunesOldest) {
  ckpt::CkptConfig cfg;
  cfg.dir = temp_dir("ring");
  cfg.keep = 3;
  ckpt::CheckpointManager mgr(cfg);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_GT(mgr.commit(i * 10, tiny_writer(i)), 0u);
  }
  EXPECT_EQ(mgr.list(), (std::vector<std::int64_t>{30, 40, 50}));
  fs::remove_all(cfg.dir);
}

TEST(CheckpointManager, LoadNewestValidFallsBackPastTruncatedTip) {
  ckpt::CkptConfig cfg;
  cfg.dir = temp_dir("fallback");
  cfg.keep = 4;
  ckpt::CheckpointManager mgr(cfg);
  mgr.commit(1, tiny_writer(1));
  mgr.commit(2, tiny_writer(2));
  mgr.commit(3, tiny_writer(3));
  // Truncate the tip as a torn write / full disk would.
  const std::string tip = mgr.path_for(3);
  const std::string bytes = util::read_file_bytes(tip);
  std::ofstream(tip, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);

  ckpt::SectionReader reader;
  int fallbacks = -1;
  EXPECT_EQ(mgr.load_newest_valid(&reader, &fallbacks), 2);
  EXPECT_EQ(fallbacks, 1);
  auto in = reader.stream("m");
  EXPECT_EQ(sio::get_i32(in), 2);
  fs::remove_all(cfg.dir);
}

ckpt::SectionWriter tagged_writer(int marker, bool healthy) {
  ckpt::SectionWriter w = tiny_writer(marker);
  w.set_healthy(healthy);
  return w;
}

TEST(CheckpointManager, RequireHealthySkipsUnhealthyTips) {
  ckpt::CkptConfig cfg;
  cfg.dir = temp_dir("healthy");
  cfg.keep = 4;
  ckpt::CheckpointManager mgr(cfg);
  mgr.commit(1, tagged_writer(1, true));
  mgr.commit(2, tagged_writer(2, false));
  mgr.commit(3, tagged_writer(3, false));

  // The plain crash-resume scan restores the newest tip regardless...
  ckpt::SectionReader reader;
  EXPECT_EQ(mgr.load_newest_valid(&reader), 3);
  EXPECT_FALSE(reader.healthy());
  // ...but the guard's rollback path must fall back past BOTH unhealthy
  // tips to the older healthy checkpoint.
  int fallbacks = -1;
  EXPECT_EQ(mgr.load_newest_valid(&reader, &fallbacks,
                                  /*require_healthy=*/true),
            1);
  EXPECT_EQ(fallbacks, 2);
  EXPECT_TRUE(reader.healthy());
  auto in = reader.stream("m");
  EXPECT_EQ(sio::get_i32(in), 1);
  fs::remove_all(cfg.dir);
}

TEST(CheckpointManager, RequireHealthyWithNoHealthyCheckpointReturnsMinusOne) {
  ckpt::CkptConfig cfg;
  cfg.dir = temp_dir("all_unhealthy");
  ckpt::CheckpointManager mgr(cfg);
  mgr.commit(1, tagged_writer(1, false));
  mgr.commit(2, tagged_writer(2, false));
  ckpt::SectionReader reader;
  EXPECT_EQ(mgr.load_newest_valid(&reader, nullptr, /*require_healthy=*/true),
            -1);
  EXPECT_EQ(mgr.load_newest_valid(&reader), 2);  // plain scan still works
  fs::remove_all(cfg.dir);
}

TEST(CheckpointManager, RemoveNewerThanDropsStaleTips) {
  ckpt::CkptConfig cfg;
  cfg.dir = temp_dir("remove_newer");
  cfg.keep = 5;
  ckpt::CheckpointManager mgr(cfg);
  mgr.commit(1, tiny_writer(1));
  mgr.commit(2, tiny_writer(2));
  mgr.commit(3, tiny_writer(3));
  EXPECT_EQ(mgr.remove_newer_than(1), 2);
  EXPECT_EQ(mgr.list(), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(mgr.remove_newer_than(5), 0);
  fs::remove_all(cfg.dir);
}

TEST(CheckpointManager, NoValidCheckpointReturnsMinusOne) {
  ckpt::CkptConfig cfg;
  cfg.dir = temp_dir("empty");
  ckpt::CheckpointManager mgr(cfg);
  ckpt::SectionReader reader;
  EXPECT_EQ(mgr.load_newest_valid(&reader), -1);
  fs::remove_all(cfg.dir);
}

TEST(CheckpointManager, EnvOverridesWin) {
  ::setenv("A3CS_CKPT_DIR", "/tmp/env_dir", 1);
  ::setenv("A3CS_CKPT_EVERY_ITERS", "7", 1);
  ::setenv("A3CS_CKPT_KEEP", "9", 1);
  ::setenv("A3CS_CKPT_RESUME", "1", 1);
  ckpt::CkptConfig cfg;
  cfg.dir = "/ignored";
  const ckpt::CkptConfig out = cfg.with_env_overrides();
  EXPECT_EQ(out.dir, "/tmp/env_dir");
  EXPECT_EQ(out.every_iters, 7);
  EXPECT_EQ(out.keep, 9);
  EXPECT_TRUE(out.resume);
  ::unsetenv("A3CS_CKPT_DIR");
  ::unsetenv("A3CS_CKPT_EVERY_ITERS");
  ::unsetenv("A3CS_CKPT_KEEP");
  ::unsetenv("A3CS_CKPT_RESUME");
}

// Regression for the startup sweep: a process killed inside
// util::atomic_write_file leaves "<ckpt>.a3ck.tmp" behind; the next
// CheckpointManager over the same directory must delete it (it was never
// published by rename, so it can never be a valid checkpoint) while leaving
// real checkpoints and unrelated files alone.
TEST(CheckpointManager, StartupSweepsOrphanedTmpFiles) {
  ckpt::CkptConfig cfg;
  cfg.dir = temp_dir("tmpsweep");
  {
    ckpt::CheckpointManager mgr(cfg);
    mgr.commit(5, tiny_writer(5));
  }
  // Inject a torn staging file exactly as a mid-write kill would leave it.
  const std::string orphan = cfg.dir + "/ckpt-000000005.a3ck.tmp";
  std::ofstream(orphan, std::ios::binary) << "torn half-written bytes";
  // Files that do not end in ".a3ck.tmp" must survive the sweep.
  const std::string bystander = cfg.dir + "/notes.tmp";
  std::ofstream(bystander) << "keep me";

  ckpt::CheckpointManager mgr(cfg);  // re-open: the sweep runs here
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_TRUE(fs::exists(bystander));
  EXPECT_EQ(mgr.list(), (std::vector<std::int64_t>{5}));  // ckpt untouched

  ckpt::SectionReader reader;
  EXPECT_EQ(mgr.load_newest_valid(&reader), 5);
  fs::remove_all(cfg.dir);
}

// ---------------------------------------------------------- stop signal

TEST(StopSignal, RequestStopSetsAndClears) {
  ckpt::StopSignalGuard guard;
  ckpt::clear_stop();
  EXPECT_FALSE(ckpt::stop_requested());
  ckpt::request_stop();
  EXPECT_TRUE(ckpt::stop_requested());
  ckpt::clear_stop();
  EXPECT_FALSE(ckpt::stop_requested());
}

// -------------------------------------------- env / vec-env state

// Every game variant must continue a mid-episode trajectory bit-exactly
// after save/load into a freshly constructed env.
TEST(EnvState, AllGamesResumeBitExactMidEpisode) {
  for (const std::string& title : arcade::all_game_titles()) {
    auto original = arcade::make_game(title, 77);
    original->reset();
    // Advance into the episode (auto-reset on done, like training does).
    util::Rng actions(5);
    bool done = false;
    for (int i = 0; i < 53; ++i) {
      if (done) original->reset();
      const auto r = original->step(actions.uniform_int(original->num_actions()));
      done = r.done;
    }

    std::ostringstream out;
    original->save_state(out);
    auto restored = arcade::make_game(title, 1);  // different seed on purpose
    std::istringstream in(out.str());
    restored->load_state(in);

    util::Rng follow_a(9), follow_b(9);
    bool done_a = done, done_b = done;
    for (int i = 0; i < 200; ++i) {
      if (done_a) original->reset();
      if (done_b) restored->reset();
      const int act = follow_a.uniform_int(original->num_actions());
      (void)follow_b;
      const auto ra = original->step(act);
      const auto rb = restored->step(act);
      ASSERT_EQ(ra.reward, rb.reward) << title << " step " << i;
      ASSERT_EQ(ra.done, rb.done) << title << " step " << i;
      for (std::int64_t k = 0; k < ra.obs.numel(); ++k) {
        ASSERT_EQ(ra.obs[k], rb.obs[k]) << title << " step " << i;
      }
      done_a = ra.done;
      done_b = rb.done;
    }
  }
}

TEST(EnvState, FrameStackRoundTrips) {
  auto a = arcade::make_stacked_game("Pong", 3, 4);
  a->reset();
  for (int i = 0; i < 10; ++i) a->step(i % a->num_actions());
  std::ostringstream out;
  a->save_state(out);
  auto b = arcade::make_stacked_game("Pong", 8, 4);
  std::istringstream in(out.str());
  b->load_state(in);
  for (int i = 0; i < 50; ++i) {
    const auto ra = a->step(i % a->num_actions());
    const auto rb = b->step(i % b->num_actions());
    ASSERT_EQ(ra.reward, rb.reward);
    for (std::int64_t k = 0; k < ra.obs.numel(); ++k) {
      ASSERT_EQ(ra.obs[k], rb.obs[k]);
    }
  }
}

TEST(EnvState, VecEnvRoundTripsScoresAndReturns) {
  arcade::VecEnv a("Catch", 3, 11);
  a.reset();
  util::Rng r(2);
  for (int i = 0; i < 40; ++i) {
    a.step({r.uniform_int(a.num_actions()), r.uniform_int(a.num_actions()),
            r.uniform_int(a.num_actions())});
  }
  std::ostringstream out;
  a.save_state(out);

  arcade::VecEnv b("Catch", 3, 999);
  b.reset();
  std::istringstream in(out.str());
  b.load_state(in);
  EXPECT_EQ(a.episodes_completed(), b.episodes_completed());
  util::Rng ra(4), rb(4);
  for (int i = 0; i < 60; ++i) {
    std::vector<int> acts{ra.uniform_int(a.num_actions()),
                          ra.uniform_int(a.num_actions()),
                          ra.uniform_int(a.num_actions())};
    (void)rb;
    const auto& sa = a.step(acts);
    const auto& sb = b.step(acts);
    ASSERT_EQ(sa.rewards, sb.rewards) << "step " << i;
    ASSERT_EQ(sa.dones, sb.dones) << "step " << i;
  }
  EXPECT_EQ(a.drain_episode_scores(), b.drain_episode_scores());
  EXPECT_EQ(a.episodes_completed(), b.episodes_completed());
}

TEST(EnvState, VecEnvCountMismatchThrows) {
  arcade::VecEnv a("Catch", 2, 1);
  a.reset();
  std::ostringstream out;
  a.save_state(out);
  arcade::VecEnv b("Catch", 3, 1);
  b.reset();
  std::istringstream in(out.str());
  EXPECT_THROW(b.load_state(in), std::runtime_error);
}

// -------------------------------------------------------- das round-trip

TEST(DasState, EngineResumesBitExact) {
  accel::AcceleratorSpace space(2, 5);
  accel::Predictor predictor;
  das::DasConfig cfg;
  cfg.samples_per_iter = 2;
  das::DasEngine a(space, predictor, cfg);
  const auto specs =
      nn::zoo_model_specs("Vanilla", arcade::standard_obs_spec(), 4);
  a.step(specs, 15);

  std::ostringstream out;
  a.save_state(out);
  das::DasEngine b(space, predictor, cfg);
  std::istringstream in(out.str());
  b.load_state(in);

  EXPECT_EQ(a.temperature(), b.temperature());
  EXPECT_EQ(a.has_incumbent(), b.has_incumbent());
  EXPECT_EQ(a.incumbent_cost(), b.incumbent_cost());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.step(specs, 1), b.step(specs, 1)) << "step " << i;
  }
  EXPECT_EQ(accel::encode_config(a.derive()),
            accel::encode_config(b.derive()));
}

// ------------------------------------------- full-engine save / restore

core::CoSearchConfig tiny_cosearch_config() {
  core::CoSearchConfig cfg;
  cfg.supernet.space.num_cells = 3;
  cfg.a2c.num_envs = 2;
  cfg.a2c.rollout_len = 4;
  cfg.a2c.loss = rl::no_distill_coefficients();
  cfg.das.samples_per_iter = 2;
  cfg.tau_decay_every_frames = 64;
  return cfg;
}

TEST(CoSearchCheckpoint, InProcessSaveRestoreContinuesBitExact) {
  const auto cfg = tiny_cosearch_config();
  // Reference: run 24 then 24 more iterations worth of frames in one engine.
  core::CoSearchEngine ref("Catch", cfg, nullptr);
  ref.run(24 * 8);  // 24 iterations of 2 envs x 4 steps
  ckpt::SectionWriter snap_ref;
  // Snapshot mid-run, keep running the same engine.
  ref.save_checkpoint(snap_ref);
  ref.run(24 * 8 + 24 * 8);

  // Restored: a FRESH engine restored from the snapshot, run the back half.
  core::CoSearchEngine res("Catch", cfg, nullptr);
  ckpt::SectionReader reader(snap_ref.encode());
  res.restore_checkpoint(reader);
  res.run(24 * 8 + 24 * 8);

  // theta, alpha and phi must be bit-identical.
  std::ostringstream sa, sb;
  ref.net().save_params(sa);
  res.net().save_params(sb);
  EXPECT_EQ(sa.str(), sb.str()) << "theta diverged after restore";
  auto aa = ref.supernet().alpha_params();
  auto ab = res.supernet().alpha_params();
  ASSERT_EQ(aa.size(), ab.size());
  for (std::size_t i = 0; i < aa.size(); ++i) {
    for (std::int64_t k = 0; k < aa[i]->value.numel(); ++k) {
      ASSERT_EQ(aa[i]->value[k], ab[i]->value[k]) << "alpha " << i;
    }
  }
  std::ostringstream da, db;
  ref.das_engine().save_state(da);
  res.das_engine().save_state(db);
  EXPECT_EQ(da.str(), db.str()) << "phi/DAS state diverged after restore";
  EXPECT_EQ(ref.supernet().temperature(), res.supernet().temperature());
  EXPECT_EQ(ref.iterations(), res.iterations());
}

TEST(CoSearchCheckpoint, RestoreRejectsMismatchedConfig) {
  const auto cfg = tiny_cosearch_config();
  core::CoSearchEngine a("Catch", cfg, nullptr);
  a.run(8 * 4);
  ckpt::SectionWriter snap;
  a.save_checkpoint(snap);
  const std::string bytes = snap.encode();

  {
    // Different game.
    core::CoSearchEngine b("Pong", cfg, nullptr);
    ckpt::SectionReader r(bytes);
    EXPECT_THROW(b.restore_checkpoint(r), std::runtime_error);
  }
  {
    // Different env count.
    auto cfg2 = cfg;
    cfg2.a2c.num_envs = 4;
    core::CoSearchEngine b("Catch", cfg2, nullptr);
    ckpt::SectionReader r(bytes);
    EXPECT_THROW(b.restore_checkpoint(r), std::runtime_error);
  }
  {
    // Different seed.
    auto cfg2 = cfg;
    cfg2.seed = cfg.seed + 1;
    core::CoSearchEngine b("Catch", cfg2, nullptr);
    ckpt::SectionReader r(bytes);
    EXPECT_THROW(b.restore_checkpoint(r), std::runtime_error);
  }
}

TEST(CoSearchCheckpoint, SignalTriggersFinalCheckpointAndCleanExit) {
  auto cfg = tiny_cosearch_config();
  cfg.ckpt.dir = temp_dir("signal");
  cfg.ckpt.every_iters = 0;  // only the signal path writes
  core::CoSearchEngine engine("Catch", cfg, nullptr);
  ckpt::clear_stop();
  int calls = 0;
  engine.run(
      1000 * 8,
      [&](std::int64_t) {
        if (++calls == 3) ckpt::request_stop();
      },
      8);
  // Stopped long before the frame budget, with exactly one checkpoint.
  EXPECT_LT(engine.iterations(), 1000);
  ckpt::CheckpointManager mgr(cfg.ckpt);
  EXPECT_EQ(mgr.list().size(), 1u);
  EXPECT_EQ(mgr.list().front(), engine.iterations());
  ckpt::clear_stop();
  fs::remove_all(cfg.ckpt.dir);
}

}  // namespace
}  // namespace a3cs
