file(REMOVE_RECURSE
  "liba3cs_bench_common.a"
)
