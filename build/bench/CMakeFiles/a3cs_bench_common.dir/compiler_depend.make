# Empty compiler generated dependencies file for a3cs_bench_common.
# This may be replaced when dependencies are built.
