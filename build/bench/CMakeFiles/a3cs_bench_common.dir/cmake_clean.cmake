file(REMOVE_RECURSE
  "CMakeFiles/a3cs_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/a3cs_bench_common.dir/bench_common.cc.o.d"
  "liba3cs_bench_common.a"
  "liba3cs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
