# Empty compiler generated dependencies file for bench_predictor_micro.
# This may be replaced when dependencies are built.
