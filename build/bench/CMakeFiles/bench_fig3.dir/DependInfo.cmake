
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3.cc" "bench/CMakeFiles/bench_fig3.dir/bench_fig3.cc.o" "gcc" "bench/CMakeFiles/bench_fig3.dir/bench_fig3.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/a3cs_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/a3cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/das/CMakeFiles/a3cs_das.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/a3cs_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/a3cs_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/a3cs_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/arcade/CMakeFiles/a3cs_arcade.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/a3cs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/a3cs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a3cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
