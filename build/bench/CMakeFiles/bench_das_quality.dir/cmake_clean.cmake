file(REMOVE_RECURSE
  "CMakeFiles/bench_das_quality.dir/bench_das_quality.cc.o"
  "CMakeFiles/bench_das_quality.dir/bench_das_quality.cc.o.d"
  "bench_das_quality"
  "bench_das_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_das_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
