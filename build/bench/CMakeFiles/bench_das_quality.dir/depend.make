# Empty dependencies file for bench_das_quality.
# This may be replaced when dependencies are built.
