# Empty dependencies file for design_accelerator.
# This may be replaced when dependencies are built.
