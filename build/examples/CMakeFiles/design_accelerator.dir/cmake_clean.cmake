file(REMOVE_RECURSE
  "CMakeFiles/design_accelerator.dir/design_accelerator.cpp.o"
  "CMakeFiles/design_accelerator.dir/design_accelerator.cpp.o.d"
  "design_accelerator"
  "design_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
