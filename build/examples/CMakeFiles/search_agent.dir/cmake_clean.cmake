file(REMOVE_RECURSE
  "CMakeFiles/search_agent.dir/search_agent.cpp.o"
  "CMakeFiles/search_agent.dir/search_agent.cpp.o.d"
  "search_agent"
  "search_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
