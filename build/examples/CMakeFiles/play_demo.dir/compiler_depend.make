# Empty compiler generated dependencies file for play_demo.
# This may be replaced when dependencies are built.
