file(REMOVE_RECURSE
  "CMakeFiles/play_demo.dir/play_demo.cpp.o"
  "CMakeFiles/play_demo.dir/play_demo.cpp.o.d"
  "play_demo"
  "play_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/play_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
