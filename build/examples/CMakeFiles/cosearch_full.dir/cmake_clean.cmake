file(REMOVE_RECURSE
  "CMakeFiles/cosearch_full.dir/cosearch_full.cpp.o"
  "CMakeFiles/cosearch_full.dir/cosearch_full.cpp.o.d"
  "cosearch_full"
  "cosearch_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosearch_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
