# Empty compiler generated dependencies file for cosearch_full.
# This may be replaced when dependencies are built.
