# Empty compiler generated dependencies file for a3cs_nas.
# This may be replaced when dependencies are built.
