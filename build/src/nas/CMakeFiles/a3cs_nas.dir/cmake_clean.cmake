file(REMOVE_RECURSE
  "CMakeFiles/a3cs_nas.dir/arch.cc.o"
  "CMakeFiles/a3cs_nas.dir/arch.cc.o.d"
  "CMakeFiles/a3cs_nas.dir/gumbel.cc.o"
  "CMakeFiles/a3cs_nas.dir/gumbel.cc.o.d"
  "CMakeFiles/a3cs_nas.dir/mixed_op.cc.o"
  "CMakeFiles/a3cs_nas.dir/mixed_op.cc.o.d"
  "CMakeFiles/a3cs_nas.dir/ops.cc.o"
  "CMakeFiles/a3cs_nas.dir/ops.cc.o.d"
  "CMakeFiles/a3cs_nas.dir/supernet.cc.o"
  "CMakeFiles/a3cs_nas.dir/supernet.cc.o.d"
  "liba3cs_nas.a"
  "liba3cs_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
