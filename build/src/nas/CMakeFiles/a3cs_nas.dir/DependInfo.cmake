
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/arch.cc" "src/nas/CMakeFiles/a3cs_nas.dir/arch.cc.o" "gcc" "src/nas/CMakeFiles/a3cs_nas.dir/arch.cc.o.d"
  "/root/repo/src/nas/gumbel.cc" "src/nas/CMakeFiles/a3cs_nas.dir/gumbel.cc.o" "gcc" "src/nas/CMakeFiles/a3cs_nas.dir/gumbel.cc.o.d"
  "/root/repo/src/nas/mixed_op.cc" "src/nas/CMakeFiles/a3cs_nas.dir/mixed_op.cc.o" "gcc" "src/nas/CMakeFiles/a3cs_nas.dir/mixed_op.cc.o.d"
  "/root/repo/src/nas/ops.cc" "src/nas/CMakeFiles/a3cs_nas.dir/ops.cc.o" "gcc" "src/nas/CMakeFiles/a3cs_nas.dir/ops.cc.o.d"
  "/root/repo/src/nas/supernet.cc" "src/nas/CMakeFiles/a3cs_nas.dir/supernet.cc.o" "gcc" "src/nas/CMakeFiles/a3cs_nas.dir/supernet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/a3cs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/a3cs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a3cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
