file(REMOVE_RECURSE
  "liba3cs_nas.a"
)
