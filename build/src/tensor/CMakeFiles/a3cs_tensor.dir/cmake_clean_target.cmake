file(REMOVE_RECURSE
  "liba3cs_tensor.a"
)
