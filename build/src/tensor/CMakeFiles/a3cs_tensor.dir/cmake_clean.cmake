file(REMOVE_RECURSE
  "CMakeFiles/a3cs_tensor.dir/ops.cc.o"
  "CMakeFiles/a3cs_tensor.dir/ops.cc.o.d"
  "CMakeFiles/a3cs_tensor.dir/serialize.cc.o"
  "CMakeFiles/a3cs_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/a3cs_tensor.dir/shape.cc.o"
  "CMakeFiles/a3cs_tensor.dir/shape.cc.o.d"
  "CMakeFiles/a3cs_tensor.dir/tensor.cc.o"
  "CMakeFiles/a3cs_tensor.dir/tensor.cc.o.d"
  "liba3cs_tensor.a"
  "liba3cs_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
