# Empty compiler generated dependencies file for a3cs_tensor.
# This may be replaced when dependencies are built.
