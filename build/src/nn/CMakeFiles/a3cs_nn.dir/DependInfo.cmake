
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/actor_critic.cc" "src/nn/CMakeFiles/a3cs_nn.dir/actor_critic.cc.o" "gcc" "src/nn/CMakeFiles/a3cs_nn.dir/actor_critic.cc.o.d"
  "/root/repo/src/nn/blocks.cc" "src/nn/CMakeFiles/a3cs_nn.dir/blocks.cc.o" "gcc" "src/nn/CMakeFiles/a3cs_nn.dir/blocks.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/a3cs_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/a3cs_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layer_spec.cc" "src/nn/CMakeFiles/a3cs_nn.dir/layer_spec.cc.o" "gcc" "src/nn/CMakeFiles/a3cs_nn.dir/layer_spec.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/a3cs_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/a3cs_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/a3cs_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/a3cs_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/a3cs_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/a3cs_nn.dir/optim.cc.o.d"
  "/root/repo/src/nn/zoo.cc" "src/nn/CMakeFiles/a3cs_nn.dir/zoo.cc.o" "gcc" "src/nn/CMakeFiles/a3cs_nn.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/a3cs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a3cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
