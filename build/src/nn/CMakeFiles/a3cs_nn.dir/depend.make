# Empty dependencies file for a3cs_nn.
# This may be replaced when dependencies are built.
