file(REMOVE_RECURSE
  "liba3cs_nn.a"
)
