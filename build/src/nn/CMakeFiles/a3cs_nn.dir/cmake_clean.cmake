file(REMOVE_RECURSE
  "CMakeFiles/a3cs_nn.dir/actor_critic.cc.o"
  "CMakeFiles/a3cs_nn.dir/actor_critic.cc.o.d"
  "CMakeFiles/a3cs_nn.dir/blocks.cc.o"
  "CMakeFiles/a3cs_nn.dir/blocks.cc.o.d"
  "CMakeFiles/a3cs_nn.dir/init.cc.o"
  "CMakeFiles/a3cs_nn.dir/init.cc.o.d"
  "CMakeFiles/a3cs_nn.dir/layer_spec.cc.o"
  "CMakeFiles/a3cs_nn.dir/layer_spec.cc.o.d"
  "CMakeFiles/a3cs_nn.dir/layers.cc.o"
  "CMakeFiles/a3cs_nn.dir/layers.cc.o.d"
  "CMakeFiles/a3cs_nn.dir/module.cc.o"
  "CMakeFiles/a3cs_nn.dir/module.cc.o.d"
  "CMakeFiles/a3cs_nn.dir/optim.cc.o"
  "CMakeFiles/a3cs_nn.dir/optim.cc.o.d"
  "CMakeFiles/a3cs_nn.dir/zoo.cc.o"
  "CMakeFiles/a3cs_nn.dir/zoo.cc.o.d"
  "liba3cs_nn.a"
  "liba3cs_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
