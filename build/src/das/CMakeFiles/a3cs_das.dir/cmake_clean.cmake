file(REMOVE_RECURSE
  "CMakeFiles/a3cs_das.dir/das.cc.o"
  "CMakeFiles/a3cs_das.dir/das.cc.o.d"
  "liba3cs_das.a"
  "liba3cs_das.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_das.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
