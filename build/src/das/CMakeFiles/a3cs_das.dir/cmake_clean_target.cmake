file(REMOVE_RECURSE
  "liba3cs_das.a"
)
