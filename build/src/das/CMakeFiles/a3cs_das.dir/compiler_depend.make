# Empty compiler generated dependencies file for a3cs_das.
# This may be replaced when dependencies are built.
