file(REMOVE_RECURSE
  "CMakeFiles/a3cs_core.dir/cosearch.cc.o"
  "CMakeFiles/a3cs_core.dir/cosearch.cc.o.d"
  "CMakeFiles/a3cs_core.dir/pipeline.cc.o"
  "CMakeFiles/a3cs_core.dir/pipeline.cc.o.d"
  "CMakeFiles/a3cs_core.dir/result_io.cc.o"
  "CMakeFiles/a3cs_core.dir/result_io.cc.o.d"
  "liba3cs_core.a"
  "liba3cs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
