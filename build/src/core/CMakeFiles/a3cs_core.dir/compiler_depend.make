# Empty compiler generated dependencies file for a3cs_core.
# This may be replaced when dependencies are built.
