file(REMOVE_RECURSE
  "liba3cs_core.a"
)
