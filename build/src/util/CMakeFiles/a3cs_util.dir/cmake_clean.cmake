file(REMOVE_RECURSE
  "CMakeFiles/a3cs_util.dir/config.cc.o"
  "CMakeFiles/a3cs_util.dir/config.cc.o.d"
  "CMakeFiles/a3cs_util.dir/csv.cc.o"
  "CMakeFiles/a3cs_util.dir/csv.cc.o.d"
  "CMakeFiles/a3cs_util.dir/logging.cc.o"
  "CMakeFiles/a3cs_util.dir/logging.cc.o.d"
  "CMakeFiles/a3cs_util.dir/rng.cc.o"
  "CMakeFiles/a3cs_util.dir/rng.cc.o.d"
  "CMakeFiles/a3cs_util.dir/stats.cc.o"
  "CMakeFiles/a3cs_util.dir/stats.cc.o.d"
  "CMakeFiles/a3cs_util.dir/table.cc.o"
  "CMakeFiles/a3cs_util.dir/table.cc.o.d"
  "liba3cs_util.a"
  "liba3cs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
