# Empty compiler generated dependencies file for a3cs_util.
# This may be replaced when dependencies are built.
