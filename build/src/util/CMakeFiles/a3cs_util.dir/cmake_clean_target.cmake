file(REMOVE_RECURSE
  "liba3cs_util.a"
)
