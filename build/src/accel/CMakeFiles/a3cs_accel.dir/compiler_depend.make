# Empty compiler generated dependencies file for a3cs_accel.
# This may be replaced when dependencies are built.
