file(REMOVE_RECURSE
  "CMakeFiles/a3cs_accel.dir/config_io.cc.o"
  "CMakeFiles/a3cs_accel.dir/config_io.cc.o.d"
  "CMakeFiles/a3cs_accel.dir/dnnbuilder.cc.o"
  "CMakeFiles/a3cs_accel.dir/dnnbuilder.cc.o.d"
  "CMakeFiles/a3cs_accel.dir/fa3c.cc.o"
  "CMakeFiles/a3cs_accel.dir/fa3c.cc.o.d"
  "CMakeFiles/a3cs_accel.dir/predictor.cc.o"
  "CMakeFiles/a3cs_accel.dir/predictor.cc.o.d"
  "CMakeFiles/a3cs_accel.dir/space.cc.o"
  "CMakeFiles/a3cs_accel.dir/space.cc.o.d"
  "liba3cs_accel.a"
  "liba3cs_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
