file(REMOVE_RECURSE
  "liba3cs_accel.a"
)
