
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/config_io.cc" "src/accel/CMakeFiles/a3cs_accel.dir/config_io.cc.o" "gcc" "src/accel/CMakeFiles/a3cs_accel.dir/config_io.cc.o.d"
  "/root/repo/src/accel/dnnbuilder.cc" "src/accel/CMakeFiles/a3cs_accel.dir/dnnbuilder.cc.o" "gcc" "src/accel/CMakeFiles/a3cs_accel.dir/dnnbuilder.cc.o.d"
  "/root/repo/src/accel/fa3c.cc" "src/accel/CMakeFiles/a3cs_accel.dir/fa3c.cc.o" "gcc" "src/accel/CMakeFiles/a3cs_accel.dir/fa3c.cc.o.d"
  "/root/repo/src/accel/predictor.cc" "src/accel/CMakeFiles/a3cs_accel.dir/predictor.cc.o" "gcc" "src/accel/CMakeFiles/a3cs_accel.dir/predictor.cc.o.d"
  "/root/repo/src/accel/space.cc" "src/accel/CMakeFiles/a3cs_accel.dir/space.cc.o" "gcc" "src/accel/CMakeFiles/a3cs_accel.dir/space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/a3cs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a3cs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/a3cs_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
