
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arcade/collect.cc" "src/arcade/CMakeFiles/a3cs_arcade.dir/collect.cc.o" "gcc" "src/arcade/CMakeFiles/a3cs_arcade.dir/collect.cc.o.d"
  "/root/repo/src/arcade/duel.cc" "src/arcade/CMakeFiles/a3cs_arcade.dir/duel.cc.o" "gcc" "src/arcade/CMakeFiles/a3cs_arcade.dir/duel.cc.o.d"
  "/root/repo/src/arcade/games.cc" "src/arcade/CMakeFiles/a3cs_arcade.dir/games.cc.o" "gcc" "src/arcade/CMakeFiles/a3cs_arcade.dir/games.cc.o.d"
  "/root/repo/src/arcade/paddle.cc" "src/arcade/CMakeFiles/a3cs_arcade.dir/paddle.cc.o" "gcc" "src/arcade/CMakeFiles/a3cs_arcade.dir/paddle.cc.o.d"
  "/root/repo/src/arcade/render.cc" "src/arcade/CMakeFiles/a3cs_arcade.dir/render.cc.o" "gcc" "src/arcade/CMakeFiles/a3cs_arcade.dir/render.cc.o.d"
  "/root/repo/src/arcade/shooter.cc" "src/arcade/CMakeFiles/a3cs_arcade.dir/shooter.cc.o" "gcc" "src/arcade/CMakeFiles/a3cs_arcade.dir/shooter.cc.o.d"
  "/root/repo/src/arcade/vec_env.cc" "src/arcade/CMakeFiles/a3cs_arcade.dir/vec_env.cc.o" "gcc" "src/arcade/CMakeFiles/a3cs_arcade.dir/vec_env.cc.o.d"
  "/root/repo/src/arcade/wrappers.cc" "src/arcade/CMakeFiles/a3cs_arcade.dir/wrappers.cc.o" "gcc" "src/arcade/CMakeFiles/a3cs_arcade.dir/wrappers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/a3cs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a3cs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/a3cs_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
