# Empty compiler generated dependencies file for a3cs_arcade.
# This may be replaced when dependencies are built.
