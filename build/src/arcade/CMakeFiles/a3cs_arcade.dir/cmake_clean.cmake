file(REMOVE_RECURSE
  "CMakeFiles/a3cs_arcade.dir/collect.cc.o"
  "CMakeFiles/a3cs_arcade.dir/collect.cc.o.d"
  "CMakeFiles/a3cs_arcade.dir/duel.cc.o"
  "CMakeFiles/a3cs_arcade.dir/duel.cc.o.d"
  "CMakeFiles/a3cs_arcade.dir/games.cc.o"
  "CMakeFiles/a3cs_arcade.dir/games.cc.o.d"
  "CMakeFiles/a3cs_arcade.dir/paddle.cc.o"
  "CMakeFiles/a3cs_arcade.dir/paddle.cc.o.d"
  "CMakeFiles/a3cs_arcade.dir/render.cc.o"
  "CMakeFiles/a3cs_arcade.dir/render.cc.o.d"
  "CMakeFiles/a3cs_arcade.dir/shooter.cc.o"
  "CMakeFiles/a3cs_arcade.dir/shooter.cc.o.d"
  "CMakeFiles/a3cs_arcade.dir/vec_env.cc.o"
  "CMakeFiles/a3cs_arcade.dir/vec_env.cc.o.d"
  "CMakeFiles/a3cs_arcade.dir/wrappers.cc.o"
  "CMakeFiles/a3cs_arcade.dir/wrappers.cc.o.d"
  "liba3cs_arcade.a"
  "liba3cs_arcade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_arcade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
