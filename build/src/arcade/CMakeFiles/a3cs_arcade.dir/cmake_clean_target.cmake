file(REMOVE_RECURSE
  "liba3cs_arcade.a"
)
