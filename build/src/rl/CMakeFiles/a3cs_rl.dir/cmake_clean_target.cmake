file(REMOVE_RECURSE
  "liba3cs_rl.a"
)
