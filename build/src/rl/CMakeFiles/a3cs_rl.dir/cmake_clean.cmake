file(REMOVE_RECURSE
  "CMakeFiles/a3cs_rl.dir/a2c.cc.o"
  "CMakeFiles/a3cs_rl.dir/a2c.cc.o.d"
  "CMakeFiles/a3cs_rl.dir/eval.cc.o"
  "CMakeFiles/a3cs_rl.dir/eval.cc.o.d"
  "CMakeFiles/a3cs_rl.dir/losses.cc.o"
  "CMakeFiles/a3cs_rl.dir/losses.cc.o.d"
  "CMakeFiles/a3cs_rl.dir/rollout.cc.o"
  "CMakeFiles/a3cs_rl.dir/rollout.cc.o.d"
  "CMakeFiles/a3cs_rl.dir/teacher.cc.o"
  "CMakeFiles/a3cs_rl.dir/teacher.cc.o.d"
  "liba3cs_rl.a"
  "liba3cs_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3cs_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
