# Empty compiler generated dependencies file for a3cs_rl.
# This may be replaced when dependencies are built.
