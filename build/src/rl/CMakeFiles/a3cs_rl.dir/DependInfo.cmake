
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/a2c.cc" "src/rl/CMakeFiles/a3cs_rl.dir/a2c.cc.o" "gcc" "src/rl/CMakeFiles/a3cs_rl.dir/a2c.cc.o.d"
  "/root/repo/src/rl/eval.cc" "src/rl/CMakeFiles/a3cs_rl.dir/eval.cc.o" "gcc" "src/rl/CMakeFiles/a3cs_rl.dir/eval.cc.o.d"
  "/root/repo/src/rl/losses.cc" "src/rl/CMakeFiles/a3cs_rl.dir/losses.cc.o" "gcc" "src/rl/CMakeFiles/a3cs_rl.dir/losses.cc.o.d"
  "/root/repo/src/rl/rollout.cc" "src/rl/CMakeFiles/a3cs_rl.dir/rollout.cc.o" "gcc" "src/rl/CMakeFiles/a3cs_rl.dir/rollout.cc.o.d"
  "/root/repo/src/rl/teacher.cc" "src/rl/CMakeFiles/a3cs_rl.dir/teacher.cc.o" "gcc" "src/rl/CMakeFiles/a3cs_rl.dir/teacher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arcade/CMakeFiles/a3cs_arcade.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/a3cs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/a3cs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a3cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
