# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_layers_test "/root/repo/build/tests/nn_layers_test")
set_tests_properties(nn_layers_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_optim_test "/root/repo/build/tests/nn_optim_test")
set_tests_properties(nn_optim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_zoo_test "/root/repo/build/tests/nn_zoo_test")
set_tests_properties(nn_zoo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(arcade_test "/root/repo/build/tests/arcade_test")
set_tests_properties(arcade_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rl_test "/root/repo/build/tests/rl_test")
set_tests_properties(rl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nas_test "/root/repo/build/tests/nas_test")
set_tests_properties(nas_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(accel_test "/root/repo/build/tests/accel_test")
set_tests_properties(accel_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(das_test "/root/repo/build/tests/das_test")
set_tests_properties(das_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(io_test "/root/repo/build/tests/io_test")
set_tests_properties(io_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;a3cs_test;/root/repo/tests/CMakeLists.txt;0;")
