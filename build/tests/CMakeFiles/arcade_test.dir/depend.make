# Empty dependencies file for arcade_test.
# This may be replaced when dependencies are built.
