file(REMOVE_RECURSE
  "CMakeFiles/arcade_test.dir/arcade_test.cc.o"
  "CMakeFiles/arcade_test.dir/arcade_test.cc.o.d"
  "arcade_test"
  "arcade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arcade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
