#!/usr/bin/env sh
# Run the repo's curated .clang-tidy checks over src/ using the build tree's
# compile_commands.json (exported by CMake automatically). Advisory second
# opinion to the enforced `lint` ctest — see docs/STATIC_ANALYSIS.md.
#
#   tools/run_clang_tidy.sh [build-dir]     # default: ./build
#
# Exits 0 with a notice when clang-tidy is not installed, so callers can
# include it unconditionally.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed, skipping (advisory pass)"
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD/compile_commands.json not found" >&2
  echo "run_clang_tidy: configure first: cmake -B $BUILD -S $ROOT" >&2
  exit 2
fi

status=0
# Sorted walk for stable output ordering.
for f in $(find "$ROOT/src" -name '*.cc' | sort); do
  echo "== clang-tidy ${f#"$ROOT"/} =="
  clang-tidy -p "$BUILD" --quiet "$f" || status=$?
done
exit "$status"
