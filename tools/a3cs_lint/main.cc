// a3cs-lint driver: walks src/, tests/, bench/ and examples/, runs the rule
// engine over every C++ source file, applies the checked-in baseline, and
// exits non-zero when unsuppressed findings remain. Registered as the `lint`
// ctest so tier-1 catches invariant regressions at build time.
//
//   a3cs_lint --repo-root <dir>              lint the tree
//   a3cs_lint --repo-root <dir> --update-a3ck-fingerprint
//   a3cs_lint --list-rules
//   a3cs_lint --repo-root <dir> file.cc ...  lint specific files only
//
// See docs/STATIC_ANALYSIS.md for the rule catalog and suppression workflow.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rules.h"

namespace fs = std::filesystem;

namespace {

constexpr const char* kWalkDirs[] = {"src", "tests", "bench", "examples"};
constexpr const char* kBaselineRel = "tools/a3cs_lint/baseline.txt";
constexpr const char* kFingerprintRel = "tools/a3cs_lint/a3ck_layout.txt";
constexpr const char* kSectionHeaderRel = "src/ckpt/section_file.h";

bool has_cpp_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::string read_file(const fs::path& p, bool* ok = nullptr) {
  std::ifstream in(p, std::ios::binary);
  if (ok != nullptr) *ok = static_cast<bool>(in);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Repo-relative path with forward slashes (rule scoping is path-based).
std::string rel_path(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

// Baseline format: `<repo-relative-path> <rule-id>` per line, '#' comments.
// An entry silences every finding of that rule in that file.
std::set<std::pair<std::string, std::string>> load_baseline(
    const fs::path& path) {
  std::set<std::pair<std::string, std::string>> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string file, rule;
    if (fields >> file >> rule) entries.emplace(file, rule);
  }
  return entries;
}

int usage() {
  std::cerr
      << "usage: a3cs_lint [--repo-root DIR] [--baseline FILE|--no-baseline]\n"
         "                 [--update-a3ck-fingerprint] [--list-rules]\n"
         "                 [files...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path baseline_path;
  bool use_baseline = true;
  bool update_fingerprint = false;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--no-baseline") {
      use_baseline = false;
    } else if (arg == "--update-a3ck-fingerprint") {
      update_fingerprint = true;
    } else if (arg == "--list-rules") {
      for (const auto& [id, desc] : a3cs_lint::rule_catalog()) {
        std::cout << id << "\t" << desc << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "a3cs_lint: unknown flag " << arg << "\n";
      return usage();
    } else {
      explicit_files.push_back(arg);
    }
  }
  root = fs::absolute(root).lexically_normal();
  if (baseline_path.empty()) baseline_path = root / kBaselineRel;

  if (update_fingerprint) {
    bool ok = false;
    const std::string header = read_file(root / kSectionHeaderRel, &ok);
    if (!ok) {
      std::cerr << "a3cs_lint: cannot read " << kSectionHeaderRel << "\n";
      return 2;
    }
    std::ofstream out(root / kFingerprintRel);
    out << a3cs_lint::render_fingerprint_file(header);
    if (!out) {
      std::cerr << "a3cs_lint: cannot write " << kFingerprintRel << "\n";
      return 2;
    }
    std::cout << "a3cs_lint: updated " << kFingerprintRel << "\n";
    return 0;
  }

  // Collect files: explicit list, or a deterministic sorted walk.
  std::vector<fs::path> files;
  if (!explicit_files.empty()) {
    for (const auto& f : explicit_files) {
      const fs::path p = fs::path(f).is_absolute() ? fs::path(f) : root / f;
      files.push_back(p);
    }
  } else {
    for (const char* dir : kWalkDirs) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<a3cs_lint::Finding> findings;
  for (const fs::path& file : files) {
    bool ok = false;
    const std::string source = read_file(file, &ok);
    if (!ok) {
      std::cerr << "a3cs_lint: cannot read " << file << "\n";
      return 2;
    }
    for (auto& f : a3cs_lint::lint_source(rel_path(root, file), source)) {
      findings.push_back(std::move(f));
    }
  }

  // Whole-tree walks also verify the A3CK layout fingerprint.
  if (explicit_files.empty()) {
    bool ok = false;
    const std::string header = read_file(root / kSectionHeaderRel, &ok);
    if (ok) {
      const std::string record = read_file(root / kFingerprintRel);
      for (auto& f : a3cs_lint::check_layout_fingerprint(
               kSectionHeaderRel, header, record)) {
        findings.push_back(std::move(f));
      }
    }
  }

  if (use_baseline) {
    const auto baseline = load_baseline(baseline_path);
    if (!baseline.empty()) {
      std::vector<a3cs_lint::Finding> kept;
      for (auto& f : findings) {
        if (!baseline.count({f.path, f.rule})) kept.push_back(std::move(f));
      }
      findings = std::move(kept);
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const a3cs_lint::Finding& a, const a3cs_lint::Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const auto& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << "a3cs_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s")
              << " (suppress with // A3CS_LINT(rule-id) or "
              << kBaselineRel << ")\n";
    return 1;
  }
  std::cout << "a3cs_lint: clean (" << files.size() << " files)\n";
  return 0;
}
