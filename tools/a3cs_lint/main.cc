// a3cs-lint driver: walks src/, tests/, bench/ and examples/, builds the
// per-TU analysis models in parallel on util::ThreadPool (A3CS_THREADS),
// runs the per-file rule engine plus the cross-TU graph phase (arch-layering
// against tools/a3cs_lint/layers.txt, conc-lock-order, ser-field-coverage),
// applies the checked-in baseline, and exits non-zero when unsuppressed
// findings remain. Registered as the `lint` ctest so tier-1 catches
// invariant regressions at build time.
//
// Model building and per-file rules are embarrassingly parallel and write
// into index-ordered slots, so the report is byte-identical at every
// A3CS_THREADS value — the same determinism contract as the numeric kernels.
//
//   a3cs_lint --repo-root <dir>              lint the tree
//   a3cs_lint --repo-root <dir> --json       machine-readable findings
//   a3cs_lint --repo-root <dir> --graph-only cross-TU families only
//   a3cs_lint --repo-root <dir> --update-a3ck-fingerprint
//   a3cs_lint --list-rules
//   a3cs_lint --repo-root <dir> file.cc ...  per-file rules on those files
//
// See docs/STATIC_ANALYSIS.md for the rule catalog and suppression workflow.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph.h"
#include "model.h"
#include "report.h"
#include "rules.h"
#include "util/thread_pool.h"

namespace fs = std::filesystem;

namespace {

constexpr const char* kWalkDirs[] = {"src", "tests", "bench", "examples"};
constexpr const char* kBaselineRel = "tools/a3cs_lint/baseline.txt";
constexpr const char* kFingerprintRel = "tools/a3cs_lint/a3ck_layout.txt";
constexpr const char* kLayersRel = "tools/a3cs_lint/layers.txt";
constexpr const char* kSectionHeaderRel = "src/ckpt/section_file.h";

bool has_cpp_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::string read_file(const fs::path& p, bool* ok = nullptr) {
  std::ifstream in(p, std::ios::binary);
  if (ok != nullptr) *ok = static_cast<bool>(in);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Repo-relative path with forward slashes (rule scoping is path-based).
std::string rel_path(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

// Baseline format: `<repo-relative-path> <rule-id>` per line, '#' comments.
// An entry silences every finding of that rule in that file.
std::set<std::pair<std::string, std::string>> load_baseline(
    const fs::path& path) {
  std::set<std::pair<std::string, std::string>> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string file, rule;
    if (fields >> file >> rule) entries.emplace(file, rule);
  }
  return entries;
}

int usage() {
  std::cerr
      << "usage: a3cs_lint [--repo-root DIR] [--baseline FILE|--no-baseline]\n"
         "                 [--json] [--graph-only]\n"
         "                 [--update-a3ck-fingerprint] [--list-rules]\n"
         "                 [files...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path baseline_path;
  bool use_baseline = true;
  bool update_fingerprint = false;
  bool json = false;
  bool graph_only = false;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--no-baseline") {
      use_baseline = false;
    } else if (arg == "--update-a3ck-fingerprint") {
      update_fingerprint = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--graph-only") {
      graph_only = true;
    } else if (arg == "--list-rules") {
      for (const auto& [id, desc] : a3cs_lint::rule_catalog()) {
        std::cout << id << "\t" << desc << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "a3cs_lint: unknown flag " << arg << "\n";
      return usage();
    } else {
      explicit_files.push_back(arg);
    }
  }
  root = fs::absolute(root).lexically_normal();
  if (baseline_path.empty()) baseline_path = root / kBaselineRel;

  if (update_fingerprint) {
    bool ok = false;
    const std::string header = read_file(root / kSectionHeaderRel, &ok);
    if (!ok) {
      std::cerr << "a3cs_lint: cannot read " << kSectionHeaderRel << "\n";
      return 2;
    }
    std::ofstream out(root / kFingerprintRel);
    out << a3cs_lint::render_fingerprint_file(header);
    if (!out) {
      std::cerr << "a3cs_lint: cannot write " << kFingerprintRel << "\n";
      return 2;
    }
    std::cout << "a3cs_lint: updated " << kFingerprintRel << "\n";
    return 0;
  }

  // Collect files: explicit list, or a deterministic sorted walk.
  std::vector<fs::path> files;
  if (!explicit_files.empty()) {
    for (const auto& f : explicit_files) {
      const fs::path p = fs::path(f).is_absolute() ? fs::path(f) : root / f;
      files.push_back(p);
    }
  } else {
    for (const char* dir : kWalkDirs) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
  }
  std::sort(files.begin(), files.end());

  // Read serially (I/O), then build every TU's model and run the per-file
  // rules in parallel. Each index writes only its own slot, so the merged
  // report is byte-identical at any A3CS_THREADS (including 1).
  const std::int64_t n = static_cast<std::int64_t>(files.size());
  std::vector<std::string> rel(files.size()), sources(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    bool ok = false;
    sources[i] = read_file(files[i], &ok);
    if (!ok) {
      std::cerr << "a3cs_lint: cannot read " << files[i] << "\n";
      return 2;
    }
    rel[i] = rel_path(root, files[i]);
  }

  a3cs::util::ThreadPool pool(
      a3cs::util::ExecConfig{}.with_env_overrides().resolved_threads());
  std::vector<a3cs_lint::FileModel> models(files.size());
  std::vector<std::vector<a3cs_lint::Finding>> per_file(files.size());
  pool.parallel_for(
      0, n, 1,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto u = static_cast<std::size_t>(i);
          models[u] = a3cs_lint::build_file_model(rel[u], sources[u]);
          if (!graph_only) {
            per_file[u] = a3cs_lint::lint_file_model(models[u]);
          }
        }
      },
      "lint.model");

  std::vector<a3cs_lint::Finding> findings;
  for (auto& file_findings : per_file) {
    for (auto& f : file_findings) findings.push_back(std::move(f));
  }

  // Whole-tree walks run the cross-TU graph phase and verify the A3CK
  // layout fingerprint; explicit-file runs see too little of the tree for
  // either to be meaningful.
  if (explicit_files.empty()) {
    const std::string layers_text = read_file(root / kLayersRel);
    for (auto& f : a3cs_lint::lint_tree(models, layers_text)) {
      findings.push_back(std::move(f));
    }
    if (!graph_only) {
      bool ok = false;
      const std::string header = read_file(root / kSectionHeaderRel, &ok);
      if (ok) {
        const std::string record = read_file(root / kFingerprintRel);
        for (auto& f : a3cs_lint::check_layout_fingerprint(
                 kSectionHeaderRel, header, record)) {
          findings.push_back(std::move(f));
        }
      }
    }
  }

  if (use_baseline) {
    const auto baseline = load_baseline(baseline_path);
    if (!baseline.empty()) {
      std::vector<a3cs_lint::Finding> kept;
      for (auto& f : findings) {
        if (!baseline.count({f.path, f.rule})) kept.push_back(std::move(f));
      }
      findings = std::move(kept);
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const a3cs_lint::Finding& a, const a3cs_lint::Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  if (json) {
    std::cout << a3cs_lint::render_json(findings, files.size());
    return findings.empty() ? 0 : 1;
  }
  for (const auto& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << "a3cs_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s")
              << " (suppress with // A3CS_LINT(rule-id) or "
              << kBaselineRel << ")\n";
    return 1;
  }
  std::cout << "a3cs_lint: clean (" << files.size() << " files)\n";
  return 0;
}
