#include "model.h"

#include <algorithm>

namespace a3cs_lint {
namespace {

bool is_ser_fn_name(const std::string& s) {
  return s == "save_state" || s == "load_state" || s == "save_params" ||
         s == "load_params" || s == "encode" || s == "serialize";
}

enum Kind { kNamespace, kClass, kEnum, kFn, kSerFn, kBlock };

// One function-ish brace span opened from namespace/class scope (method
// bodies, free functions, serialization bodies, stray initializer blocks).
struct BodySpan {
  std::size_t open = 0;    // token index of '{'
  std::size_t close = 0;   // token index of matching '}' (n if unterminated)
  std::string name;        // best-effort ("" when unknown)
  std::string class_name;  // enclosing class or out-of-line `Class::` ("")
  int line = 0;
  bool is_ser = false;     // classified as a serialization-fn body
};

struct Walk {
  ScopeInfo scopes;
  std::vector<int> class_of_token;  // direct-member class index or -1
  std::vector<BodySpan> bodies;
};

// Best-effort name of the function whose body opens at brace index `b`:
// scan back over trailing qualifiers to the parameter-list ')' and match it
// to its '(' — the identifier before that is the name, optionally preceded
// by a `Class ::` qualifier.
void name_function(const std::vector<Token>& toks, std::size_t b,
                   BodySpan* span) {
  static const std::set<std::string> kTrailing = {
      "const", "noexcept", "override", "final", "mutable", "try"};
  auto is_punct = [&](std::size_t i, const char* p) {
    return i < toks.size() && toks[i].kind == TokKind::kPunct &&
           toks[i].text == p;
  };
  std::size_t j = b;
  while (j > 0 && toks[j - 1].kind == TokKind::kIdent &&
         kTrailing.count(toks[j - 1].text)) {
    --j;
  }
  if (j == 0 || !is_punct(j - 1, ")")) return;
  int paren = 0;
  for (j = j - 1;; --j) {
    if (is_punct(j, ")")) ++paren;
    else if (is_punct(j, "(") && --paren == 0) break;
    if (j == 0) return;
  }
  if (j == 0 || toks[j - 1].kind != TokKind::kIdent) return;
  span->name = toks[j - 1].text;
  span->line = toks[j - 1].line;
  if (j >= 3 && is_punct(j - 2, "::") && toks[j - 3].kind == TokKind::kIdent) {
    span->class_name = toks[j - 3].text;
  }
}

// The full structural walk. walk_scopes() is the historical subset view;
// build_file_model() consumes everything.
Walk walk_full(const std::vector<Token>& toks) {
  Walk out;
  ScopeInfo& info = out.scopes;
  const std::size_t n = toks.size();
  info.at_ns_scope.assign(n, false);
  info.in_function.assign(n, false);
  info.in_ser_fn.assign(n, false);
  info.at_class_scope.assign(n, false);
  out.class_of_token.assign(n, -1);

  auto is_punct = [&](std::size_t i, const char* p) {
    return i < n && toks[i].kind == TokKind::kPunct && toks[i].text == p;
  };
  auto is_ident = [&](std::size_t i) {
    return i < n && toks[i].kind == TokKind::kIdent;
  };

  // Pre-classify braces opened by class/struct/enum/namespace heads and by
  // serialization-function definitions: token index of '{' -> kind.
  std::map<std::size_t, Kind> brace_kind;
  std::map<std::size_t, std::pair<std::string, int>> class_heads;
  std::map<std::size_t, std::size_t> ser_name_tok;  // '{' -> name token
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;

    if (t == "namespace") {
      // namespace [name[::name]] { ...   (alias form ends in ';')
      std::size_t j = i + 1;
      while (j < n && (is_ident(j) || is_punct(j, "::"))) ++j;
      if (is_punct(j, "{")) brace_kind[j] = kNamespace;
    } else if (t == "enum") {
      std::size_t j = i + 1;
      if (is_ident(j) && (toks[j].text == "class" || toks[j].text == "struct"))
        ++j;
      if (is_ident(j)) ++j;               // enum name
      if (is_punct(j, ":")) {             // underlying type
        ++j;
        while (j < n && (is_ident(j) || is_punct(j, "::"))) ++j;
      }
      if (is_punct(j, "{")) brace_kind[j] = kEnum;
    } else if (t == "class" || t == "struct" || t == "union") {
      if (i > 0 && is_ident(i - 1) && toks[i - 1].text == "enum") continue;
      std::size_t j = i + 1;
      std::string name;
      if (is_ident(j)) {
        name = toks[j].text;
        ++j;
        if (is_ident(j) && toks[j].text == "final") ++j;
      }
      if (is_punct(j, "{")) {
        brace_kind[j] = kClass;
        class_heads[j] = {name, toks[i].line};
      } else if (is_punct(j, ":")) {
        // Base-clause: scan to the first '{' or ';' outside parens/angles
        // opened here. Angle depth guards Base<int> in the clause.
        int angle = 0, paren = 0;
        for (++j; j < n; ++j) {
          const Token& tk = toks[j];
          if (tk.kind != TokKind::kPunct) continue;
          if (tk.text == "<") ++angle;
          else if (tk.text == ">") angle = std::max(0, angle - 1);
          else if (tk.text == "(") ++paren;
          else if (tk.text == ")") --paren;
          else if (tk.text == "{" && angle == 0 && paren == 0) {
            brace_kind[j] = kClass;
            class_heads[j] = {name, toks[i].line};
            break;
          } else if (tk.text == ";" && angle == 0 && paren == 0) {
            break;
          }
        }
      }
      // `class T` in template parameter lists is followed by ',' or '>' and
      // is left unclassified on purpose.
    } else if (is_ser_fn_name(t) && is_punct(i + 1, "(")) {
      // save_state(...) [const] [noexcept] [final] [override] { body }
      int paren = 0;
      std::size_t j = i + 1;
      for (; j < n; ++j) {
        if (is_punct(j, "(")) ++paren;
        else if (is_punct(j, ")") && --paren == 0) { ++j; break; }
      }
      while (j < n && is_ident(j) &&
             (toks[j].text == "const" || toks[j].text == "noexcept" ||
              toks[j].text == "final" || toks[j].text == "override")) {
        ++j;
      }
      if (is_punct(j, "{")) {
        brace_kind[j] = kSerFn;
        ser_name_tok[j] = i;
      }
    }
  }

  struct Open {
    Kind kind;
    int class_index = -1;  // into ScopeInfo::classes when kind == kClass
    int body_index = -1;   // into Walk::bodies when this brace opened one
  };
  std::vector<Open> stack;
  for (std::size_t i = 0; i < n; ++i) {
    // Record context flags for this token (before handling its own brace).
    bool ns = true, in_fn = false, in_ser = false;
    for (const Open& o : stack) {
      if (o.kind != kNamespace) ns = false;
      if (o.kind == kFn || o.kind == kSerFn || o.kind == kBlock) in_fn = true;
      if (o.kind == kSerFn) in_ser = true;
    }
    info.at_ns_scope[i] = ns;
    info.in_function[i] = in_fn;
    info.in_ser_fn[i] = in_ser;
    info.at_class_scope[i] = !stack.empty() && stack.back().kind == kClass;
    if (info.at_class_scope[i]) {
      out.class_of_token[i] = stack.back().class_index;
    }

    if (toks[i].kind == TokKind::kPunct) {
      if (toks[i].text == "{") {
        Open o;
        const auto it = brace_kind.find(i);
        if (it != brace_kind.end()) {
          o.kind = it->second;
          if (o.kind == kClass) {
            const auto& [name, line] = class_heads[i];
            o.class_index = static_cast<int>(info.classes.size());
            info.classes.push_back({name, line, false, false});
          }
        } else {
          // Unclassified braces after ')' open function bodies; everything
          // else (initializer lists, lambdas, compound statements) is a
          // plain block — both count as "inside a function" for the rules.
          o.kind = (i > 0 && is_punct(i - 1, ")")) ? kFn : kBlock;
        }
        // The outermost function-ish brace (not nested inside another
        // function) opens a BodySpan for the concurrency/ser analyses.
        if ((o.kind == kFn || o.kind == kSerFn || o.kind == kBlock) &&
            !in_fn) {
          BodySpan span;
          span.open = i;
          span.close = n;
          span.line = toks[i].line;
          if (o.kind == kSerFn) {
            span.is_ser = true;
            const std::size_t name_tok = ser_name_tok[i];
            span.name = toks[name_tok].text;
            span.line = toks[name_tok].line;
            if (name_tok >= 2 && is_punct(name_tok - 1, "::") &&
                is_ident(name_tok - 2)) {
              span.class_name = toks[name_tok - 2].text;
            }
          } else if (o.kind == kFn) {
            name_function(toks, i, &span);
          }
          // An inline method's class is the enclosing one; it wins over any
          // (absent) out-of-line qualifier.
          for (auto r = stack.rbegin(); r != stack.rend(); ++r) {
            if (r->kind == kClass && r->class_index >= 0) {
              span.class_name = info.classes[r->class_index].name;
              break;
            }
          }
          o.body_index = static_cast<int>(out.bodies.size());
          out.bodies.push_back(std::move(span));
        }
        stack.push_back(o);
      } else if (toks[i].text == "}") {
        if (!stack.empty()) {
          if (stack.back().body_index >= 0) {
            out.bodies[static_cast<std::size_t>(stack.back().body_index)]
                .close = i;
          }
          stack.pop_back();
        }
      }
      continue;
    }

    // ser-pair bookkeeping: a save_state/load_state member declared directly
    // at class scope (not a call inside an inline method body).
    if (toks[i].kind == TokKind::kIdent && info.at_class_scope[i] &&
        is_punct(i + 1, "(")) {
      if (!stack.empty() && stack.back().class_index >= 0) {
        auto& cls = info.classes[stack.back().class_index];
        if (toks[i].text == "save_state") cls.has_save = true;
        if (toks[i].text == "load_state") cls.has_load = true;
      }
    }
  }
  return out;
}

// --------------------------------------------------------- field extraction --

// Splits the direct-member token subsequence of each class into declaration
// chunks and recognizes data members. Method bodies, nested classes and
// brace initializers are excluded by construction: their tokens carry a
// different class_of_token (or none), and '{'/'}' terminate chunks.
void extract_fields(const std::vector<Token>& toks, const Walk& walk,
                    std::vector<ClassModel>* classes) {
  static const std::set<std::string> kSkipKeywords = {
      "using",  "typedef", "friend",    "template", "operator",
      "static_assert", "enum", "class", "struct",   "union", "namespace"};
  static const std::set<std::string> kAccess = {"public", "private",
                                                "protected"};

  const std::size_t nclasses = walk.scopes.classes.size();
  std::vector<std::vector<std::size_t>> member_toks(nclasses);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const int c = walk.class_of_token[i];
    if (c >= 0) member_toks[static_cast<std::size_t>(c)].push_back(i);
  }

  for (std::size_t c = 0; c < nclasses; ++c) {
    const ScopeInfo::ClassSpan& span = walk.scopes.classes[c];
    ClassModel cls;
    cls.name = span.name;
    cls.line = span.line;
    cls.has_save = span.has_save;
    cls.has_load = span.has_load;

    std::vector<std::size_t> chunk;
    auto flush = [&]() {
      std::vector<std::size_t> decl = std::move(chunk);
      chunk.clear();
      // Strip leading access specifiers ("public :").
      while (decl.size() >= 2 && toks[decl[0]].kind == TokKind::kIdent &&
             kAccess.count(toks[decl[0]].text) &&
             toks[decl[1]].kind == TokKind::kPunct &&
             toks[decl[1]].text == ":") {
        decl.erase(decl.begin(), decl.begin() + 2);
      }
      if (decl.empty()) return;
      // Classify: a '(' at angle depth 0 marks a function declaration (or a
      // macro invocation — either way, not a data member).
      int angle = 0;
      bool has_paren = false, keyword = false;
      std::size_t eq_at = decl.size();
      for (std::size_t k = 0; k < decl.size(); ++k) {
        const Token& t = toks[decl[k]];
        if (t.kind == TokKind::kIdent && kSkipKeywords.count(t.text)) {
          keyword = true;
          break;
        }
        if (t.kind != TokKind::kPunct) continue;
        if (t.text == "<") ++angle;
        else if (t.text == ">") angle = std::max(0, angle - 1);
        else if (t.text == "(" && angle == 0) { has_paren = true; break; }
        else if (t.text == "=" && angle == 0 && eq_at == decl.size()) {
          eq_at = k;
        }
      }
      if (keyword) return;
      if (has_paren) {
        cls.has_methods = true;
        return;
      }
      // Declarator list: `double alpha_, eps_ = 1e-5;` declares two fields
      // sharing one type. Split at top-level commas (angle/paren depth 0);
      // each segment's name is its last identifier before any '='.
      std::vector<std::pair<std::size_t, std::size_t>> segments;
      angle = 0;
      int paren = 0;
      std::size_t seg_start = 0;
      for (std::size_t k = 0; k <= decl.size(); ++k) {
        const bool at_end = (k == decl.size());
        if (!at_end && toks[decl[k]].kind == TokKind::kPunct) {
          const std::string& p = toks[decl[k]].text;
          if (p == "<") ++angle;
          else if (p == ">") angle = std::max(0, angle - 1);
          else if (p == "(" || p == "[") ++paren;
          else if (p == ")" || p == "]") --paren;
        }
        if (at_end || (angle == 0 && paren == 0 &&
                       toks[decl[k]].kind == TokKind::kPunct &&
                       toks[decl[k]].text == ",")) {
          if (k > seg_start) segments.emplace_back(seg_start, k);
          seg_start = k + 1;
        }
      }
      if (segments.empty()) return;

      // The first segment carries the type; its name is the last identifier
      // before the initializer.
      const auto [t_begin, t_end] = segments.front();
      std::size_t first_eq = t_end;
      angle = 0;
      for (std::size_t k = t_begin; k < t_end; ++k) {
        if (toks[decl[k]].kind != TokKind::kPunct) continue;
        const std::string& p = toks[decl[k]].text;
        if (p == "<") ++angle;
        else if (p == ">") angle = std::max(0, angle - 1);
        else if (p == "=" && angle == 0) { first_eq = k; break; }
      }
      std::size_t name_at = t_end;
      for (std::size_t k = first_eq; k-- > t_begin;) {
        if (toks[decl[k]].kind == TokKind::kIdent) {
          name_at = k;
          break;
        }
      }
      if (name_at == t_end || name_at == t_begin) return;  // no type portion

      FieldDecl proto;
      angle = 0;
      for (std::size_t k = t_begin; k < name_at; ++k) {
        const Token& t = toks[decl[k]];
        if (t.kind == TokKind::kIdent) {
          if (t.text == "static") proto.is_static = true;
          else if (angle == 0 && (t.text == "const" || t.text == "constexpr"))
            proto.is_const = true;
          if (t.text != "static" && t.text != "mutable" &&
              t.text != "volatile" && t.text != "inline") {
            proto.type_idents.push_back(t.text);
          }
        } else if (t.kind == TokKind::kPunct) {
          if (t.text == "<") ++angle;
          else if (t.text == ">") angle = std::max(0, angle - 1);
          else if (t.text == "&" && angle == 0) proto.is_reference = true;
        }
      }
      if (proto.type_idents.empty()) return;

      auto emit = [&](std::size_t at) {
        FieldDecl field = proto;
        field.name = toks[decl[at]].text;
        field.line = toks[decl[at]].line;
        cls.fields.push_back(std::move(field));
      };
      emit(name_at);
      for (std::size_t s = 1; s < segments.size(); ++s) {
        const auto [s_begin, s_end] = segments[s];
        std::size_t seg_eq = s_end;
        angle = 0;
        for (std::size_t k = s_begin; k < s_end; ++k) {
          if (toks[decl[k]].kind != TokKind::kPunct) continue;
          const std::string& p = toks[decl[k]].text;
          if (p == "<") ++angle;
          else if (p == ">") angle = std::max(0, angle - 1);
          else if (p == "=" && angle == 0) { seg_eq = k; break; }
        }
        for (std::size_t k = seg_eq; k-- > s_begin;) {
          if (toks[decl[k]].kind == TokKind::kIdent) {
            emit(k);
            break;
          }
        }
      }
    };

    for (const std::size_t i : member_toks[c]) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        flush();
        continue;
      }
      chunk.push_back(i);
    }
    flush();
    classes->push_back(std::move(cls));
  }
}

// ------------------------------------------------------------ lock scanning --

// Reduces a mutex argument expression to its base identifier chain.
// `shards_[i]->mu` -> {shards_, mu}; `global_pool_mu()` -> call
// {global_pool_mu}; a leading `this ->` is dropped.
MutexRef parse_mutex_ref(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end) {
  MutexRef ref;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent) {
      if (t.text == "this") continue;
      if (i + 1 < end && toks[i + 1].kind == TokKind::kPunct &&
          toks[i + 1].text == "(") {
        ref.chain.push_back(t.text);
        ref.is_call = true;
        break;
      }
      ref.chain.push_back(t.text);
    } else if (t.kind == TokKind::kPunct) {
      if (t.text == "[") {  // skip the subscript expression
        int depth = 0;
        for (; i < end; ++i) {
          if (toks[i].kind != TokKind::kPunct) continue;
          if (toks[i].text == "[") ++depth;
          else if (toks[i].text == "]" && --depth == 0) break;
        }
      }
      // '.', '-', '>', '::', '*', '&', ']' all just continue the chain.
    }
  }
  return ref;
}

std::string mutex_ref_text(const MutexRef& ref) {
  std::string s;
  for (const auto& part : ref.chain) {
    if (!s.empty()) s += ".";
    s += part;
  }
  if (ref.is_call) s += "()";
  return s.empty() ? "<unknown>" : s;
}

bool is_lock_type(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" ||
         t == "shared_lock";
}

// Scans one function body for RAII lock acquisitions and raw fork calls.
void scan_body(const std::vector<Token>& toks, const BodySpan& span,
               FunctionModel* fn) {
  struct Held {
    int depth;
    MutexRef ref;
  };
  std::vector<Held> held;
  int depth = 0;
  auto is_punct = [&](std::size_t i, const char* p) {
    return i < toks.size() && toks[i].kind == TokKind::kPunct &&
           toks[i].text == p;
  };

  for (std::size_t i = span.open + 1; i < span.close && i < toks.size();
       ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        ++depth;
      } else if (t.text == "}") {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;

    if ((t.text == "fork" || t.text == "vfork") && is_punct(i + 1, "(") &&
        !is_punct(i - 1, ".") &&
        !(is_punct(i - 1, ">") && is_punct(i - 2, "-")) && !held.empty()) {
      for (const Held& h : held) {
        fn->fork_while_locked.push_back({h.ref, t.line});
      }
      continue;
    }
    if (!is_lock_type(t.text)) continue;

    // std::lock_guard<std::mutex> name(args...); — skip template args, the
    // variable name, then parse the parenthesized argument list.
    std::size_t j = i + 1;
    if (is_punct(j, "<")) {
      int angle = 0;
      for (; j < span.close; ++j) {
        if (is_punct(j, "<")) ++angle;
        else if (is_punct(j, ">") && --angle == 0) { ++j; break; }
      }
    }
    if (j >= span.close || toks[j].kind != TokKind::kIdent) continue;
    ++j;  // variable name
    if (!is_punct(j, "(")) continue;
    const std::size_t args_begin = j + 1;
    int paren = 0;
    std::size_t args_end = args_begin;
    for (std::size_t k = j; k < span.close; ++k) {
      if (is_punct(k, "(")) ++paren;
      else if (is_punct(k, ")") && --paren == 0) { args_end = k; break; }
    }
    // Split top-level commas; every argument that is not a lock tag is a
    // mutex expression. std::scoped_lock's own arguments acquire atomically
    // (deadlock-avoiding), so they get no edges among themselves.
    static const std::set<std::string> kTags = {"defer_lock", "try_to_lock",
                                                "adopt_lock"};
    std::vector<MutexRef> acquired;
    std::size_t arg_start = args_begin;
    int adepth = 0;
    for (std::size_t k = args_begin; k <= args_end; ++k) {
      const bool at_end = (k == args_end);
      if (!at_end && toks[k].kind == TokKind::kPunct) {
        if (toks[k].text == "(" || toks[k].text == "[" || toks[k].text == "<")
          ++adepth;
        else if (toks[k].text == ")" || toks[k].text == "]" ||
                 toks[k].text == ">")
          --adepth;
      }
      if (at_end || (adepth == 0 && toks[k].kind == TokKind::kPunct &&
                     toks[k].text == ",")) {
        if (k > arg_start) {
          bool tag = false;
          for (std::size_t m = arg_start; m < k; ++m) {
            if (toks[m].kind == TokKind::kIdent && kTags.count(toks[m].text))
              tag = true;
          }
          if (!tag) {
            MutexRef ref = parse_mutex_ref(toks, arg_start, k);
            if (!ref.chain.empty()) acquired.push_back(std::move(ref));
          }
        }
        arg_start = k + 1;
      }
    }
    if (t.text != "scoped_lock" && acquired.size() > 1) acquired.resize(1);
    for (const MutexRef& m : acquired) {
      for (const Held& h : held) {
        if (mutex_ref_text(h.ref) == mutex_ref_text(m)) continue;
        fn->lock_edges.push_back({h.ref, m, t.line});
      }
    }
    for (MutexRef& m : acquired) held.push_back({depth, std::move(m)});
    i = args_end;
  }
}

// ------------------------------------------------------------------ includes --

void extract_includes(const LexedFile& lex, std::vector<IncludeEdge>* out) {
  for (std::size_t l = 0; l < lex.lines.size(); ++l) {
    const std::string& text = lex.lines[l];
    const std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos || text[first] != '#') continue;
    std::size_t at = text.find("include", first);
    if (at == std::string::npos) continue;
    at = text.find('"', at);
    if (at == std::string::npos) continue;  // <system> includes don't layer
    const std::size_t close = text.find('"', at + 1);
    if (close == std::string::npos) continue;
    out->push_back(
        {text.substr(at + 1, close - at - 1), static_cast<int>(l + 1)});
  }
}

std::string module_of_path(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return "";
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

}  // namespace

ScopeInfo walk_scopes(const std::vector<Token>& toks) {
  return walk_full(toks).scopes;
}

bool is_suppressed(const LexedFile& lex, int line, const std::string& rule) {
  const auto it = lex.suppressions.find(line);
  return it != lex.suppressions.end() &&
         (it->second.count(rule) || it->second.count("all"));
}

FileModel build_file_model(const std::string& path,
                           const std::string& source) {
  FileModel model;
  model.path = path;
  model.module = module_of_path(path);
  model.lex = lex(source);
  const std::vector<Token>& toks = model.lex.tokens;
  Walk walk = walk_full(toks);

  extract_includes(model.lex, &model.includes);
  extract_fields(toks, walk, &model.classes);
  model.scopes = std::move(walk.scopes);

  for (const BodySpan& span : walk.bodies) {
    if (span.is_ser &&
        (span.name == "save_state" || span.name == "load_state") &&
        !span.class_name.empty()) {
      SerBody body;
      body.class_name = span.class_name;
      body.is_save = span.name == "save_state";
      body.line = span.line;
      for (std::size_t i = span.open + 1;
           i < span.close && i < toks.size(); ++i) {
        if (toks[i].kind == TokKind::kIdent) body.idents.insert(toks[i].text);
      }
      model.ser_bodies.push_back(std::move(body));
    }
    FunctionModel fn;
    fn.name = span.name;
    fn.class_name = span.class_name;
    fn.line = span.line;
    scan_body(toks, span, &fn);
    if (!fn.lock_edges.empty() || !fn.fork_while_locked.empty()) {
      model.functions.push_back(std::move(fn));
    }
  }
  return model;
}

}  // namespace a3cs_lint
