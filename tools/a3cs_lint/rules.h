// a3cs-lint rule engine: enforces the repo's determinism, serialization,
// concurrency and hygiene invariants over lexed token streams (see lexer.h).
// Rules are path-scoped — the same source text can be clean under one
// virtual path and a violation under another — which is also how the test
// suite exercises scoping without touching real tree paths.
//
// Rule ids (stable; used by inline suppressions and the baseline file):
//   arch-intrinsics-scoped  SIMD intrinsics (<immintrin.h>, _mm*/__m*)
//                           outside src/tensor/backend/
//   arch-layering           src/ include violating the declared layer DAG
//                           (tools/a3cs_lint/layers.txt) or a module cycle
//                           [cross-TU, graph phase]
//   conc-lock-order         mutex pair acquired in conflicting orders across
//                           TUs, or a lock held across fork() in src/fleet/
//                           [cross-TU, graph phase]
//   ser-field-coverage      data member of a save_state/load_state class
//                           missing from either body [cross-TU, graph phase]
//   det-rand                rand()/srand()/std::random_device outside src/util/
//   det-time-seed           RNG seeds derived from wall clocks/counters
//   det-wall-clock          any clock in numeric code (tensor/nn/nas/rl/das/
//                           accel/arcade) — timing belongs in obs/ or bench
//   det-bench-clock         wall clock (system_clock/gettimeofday/...) in
//                           bench/ — sample via BenchSuite::now_ns instead
//   det-unordered-iter      range-for over unordered containers in
//                           save_state/load_state bodies or src/obs/ emission
//   ser-pair                class declares save_state xor load_state
//   ser-raw-io              fwrite/fread/memcpy in src/ckpt/ or src/util/
//                           outside the explicit-LE sio helpers
//   ser-layout-fingerprint  section_file.h layout changed without a
//                           kCkptFormatVersion bump (checked-in fingerprint)
//   conc-raw-thread         std::thread/std::async/detach/pthread_create
//                           outside util/thread_pool
//   conc-static-local       mutable function-local static in src/ without
//                           atomic/mutex protection nearby
//   conc-mutable-global     mutable namespace-scope variable in src/ without
//                           atomic/mutex type
//   hyg-pragma-once         header does not start with #pragma once
//   hyg-using-namespace     using-namespace directive in a header
//
// Suppression: `// A3CS_LINT(rule-id)` on (or alone on the line above) the
// offending line, or a `path rule-id` line in tools/a3cs_lint/baseline.txt.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace a3cs_lint {

struct FileModel;

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

// Runs every path-applicable per-file rule over `source` as if it lived at
// the repo-relative `path` (forward slashes). Inline A3CS_LINT suppressions
// are already applied; baseline filtering is the driver's job. The cross-TU
// families (arch-layering, conc-lock-order, ser-field-coverage) need the
// whole tree and run in the graph phase — see graph.h.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source);

// Same, over an already-built model (the parallel driver path: models are
// built on pool workers, rules consume them without re-lexing).
std::vector<Finding> lint_file_model(const FileModel& model);

// {rule-id, one-line description} for every rule, sorted by id.
std::vector<std::pair<std::string, std::string>> rule_catalog();

// --- A3CK layout fingerprint (rule ser-layout-fingerprint) -----------------
//
// The fingerprint is an FNV-1a-64 hash of section_file.h's token stream
// (comments and whitespace excluded, string/char literal bodies included),
// so doc edits never trip it but any layout-relevant code change does. The
// recorded fingerprint + format version live in tools/a3cs_lint/
// a3ck_layout.txt; changing the layout without bumping kCkptFormatVersion
// (or bumping without refreshing the record) is a violation.

std::uint64_t layout_fingerprint(const std::string& header_source);

// Value of kCkptFormatVersion in the header, or -1 when absent.
int parse_format_version(const std::string& header_source);

// Renders the fingerprint-file content for the current header.
std::string render_fingerprint_file(const std::string& header_source);

// Compares header vs the checked-in record (pass the file's content, empty
// string when the file is missing). `header_path` only labels findings.
std::vector<Finding> check_layout_fingerprint(
    const std::string& header_path, const std::string& header_source,
    const std::string& fingerprint_file_content);

}  // namespace a3cs_lint
