// conc-lock-order: canonicalizes every lock-acquisition site against the
// repo-wide mutex-field index, merges the per-function acquisition orders
// into one lock graph, and reports cycles (potential deadlock) plus any
// fork() issued while a lock is held in src/fleet/ (locks don't survive
// fork — the child inherits a locked mutex nobody will ever unlock).
#include <algorithm>
#include <functional>
#include <tuple>

#include "graph.h"

namespace a3cs_lint {
namespace {

constexpr const char* kRule = "conc-lock-order";

bool is_mutex_type(const std::vector<std::string>& type_idents) {
  for (const std::string& t : type_idents) {
    if (t == "mutex" || t == "shared_mutex" || t == "recursive_mutex" ||
        t == "timed_mutex" || t == "recursive_timed_mutex") {
      return true;
    }
  }
  return false;
}

std::string join_chain(const MutexRef& ref) {
  std::string s;
  for (const std::string& part : ref.chain) {
    if (!s.empty()) s += ".";
    s += part;
  }
  if (ref.is_call) s += "()";
  return s;
}

// Where a mutex-typed field with a given name is declared.
struct MutexDecl {
  std::string class_name;
  std::string module;
  std::string path;
};

// Canonical repo-wide name for a mutex reference seen in `file` inside a
// function of `class_name`. Precedence:
//   1. the enclosing class declares chain[0] itself -> Class::chain
//   2. the last chain element is a known mutex field -> DeclClass::name,
//      preferring a declaring class in the same file, then same module,
//      then the lexicographically-first one
//   3. the literal chain text (locals, function-returned mutexes)
std::string canonical_mutex(
    const MutexRef& ref, const FileModel& file, const std::string& class_name,
    const std::map<std::string, std::set<std::string>>& class_fields,
    const std::multimap<std::string, MutexDecl>& mutex_decls) {
  if (ref.chain.empty()) return "<unknown>";
  if (!class_name.empty()) {
    const auto it = class_fields.find(class_name);
    if (it != class_fields.end() && it->second.count(ref.chain.front())) {
      return class_name + "::" + join_chain(ref);
    }
  }
  const std::string& leaf = ref.chain.back();
  auto [lo, hi] = mutex_decls.equal_range(leaf);
  const MutexDecl* best = nullptr;
  for (auto it = lo; it != hi; ++it) {
    const MutexDecl& d = it->second;
    auto score = [&](const MutexDecl& m) {
      return std::make_tuple(m.path != file.path, m.module != file.module,
                             m.class_name, m.path);
    };
    if (!best || score(d) < score(*best)) best = &d;
  }
  if (best) return best->class_name + "::" + leaf;
  return join_chain(ref);
}

}  // namespace

std::vector<Finding> check_lock_order(const std::vector<FileModel>& files) {
  std::vector<Finding> out;

  // Repo-wide mutex-field index.
  std::map<std::string, std::set<std::string>> class_fields;  // all fields
  std::multimap<std::string, MutexDecl> mutex_decls;
  for (const FileModel& f : files) {
    for (const ClassModel& cls : f.classes) {
      if (cls.name.empty()) continue;
      for (const FieldDecl& field : cls.fields) {
        class_fields[cls.name].insert(field.name);
        if (is_mutex_type(field.type_idents)) {
          mutex_decls.emplace(field.name,
                              MutexDecl{cls.name, f.module, f.path});
        }
      }
    }
  }

  // Merge per-function acquisition orders into one graph. Each directed
  // edge keeps its lexicographically-first acquisition site for anchoring.
  std::map<std::pair<std::string, std::string>,
           std::tuple<std::string, int, std::string>>
      edge_site;  // (from,to) -> (path, line, function)
  for (const FileModel& f : files) {
    if (f.module.empty()) continue;  // graph rules constrain src/ only
    for (const FunctionModel& fn : f.functions) {
      for (const RawLockEdge& e : fn.lock_edges) {
        const std::string from = canonical_mutex(e.from, f, fn.class_name,
                                                 class_fields, mutex_decls);
        const std::string to = canonical_mutex(e.to, f, fn.class_name,
                                               class_fields, mutex_decls);
        if (from == to) continue;
        const auto key = std::make_pair(from, to);
        auto site = std::make_tuple(f.path, e.line, fn.name);
        const auto it = edge_site.find(key);
        if (it == edge_site.end() || site < it->second) {
          edge_site[key] = std::move(site);
        }
      }
      // fork() under a held lock: pthread_atfork-free code must never fork
      // with locks held — the child's copy stays locked forever.
      if (f.path.rfind("src/fleet/", 0) == 0) {
        for (const auto& [ref, line] : fn.fork_while_locked) {
          const std::string held = canonical_mutex(ref, f, fn.class_name,
                                                   class_fields, mutex_decls);
          out.push_back({f.path, line, kRule,
                         "fork() while holding " + held +
                             " — the child inherits a locked mutex that can "
                             "never be released; drop all locks before "
                             "forking"});
        }
      }
    }
  }

  // Tarjan SCC over the lock graph; every edge inside a cycle is reported
  // at its own acquisition site so fixes/suppressions are local.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [key, _] : edge_site) {
    adj[key.first].insert(key.second);
    adj.emplace(key.second, std::set<std::string>{});
  }
  std::map<std::string, int> index, low, comp_of;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int next = 0, comps = 0;
  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = next++;
        stack.push_back(v);
        on_stack.insert(v);
        for (const std::string& w : adj[v]) {
          if (!index.count(w)) {
            strongconnect(w);
            low[v] = std::min(low[v], low[w]);
          } else if (on_stack.count(w)) {
            low[v] = std::min(low[v], index[w]);
          }
        }
        if (low[v] == index[v]) {
          const int c = comps++;
          for (;;) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            comp_of[w] = c;
            if (w == v) break;
          }
        }
      };
  for (const auto& [v, _] : adj) {
    if (!index.count(v)) strongconnect(v);
  }
  std::map<int, int> comp_size;
  for (const auto& [_, c] : comp_of) ++comp_size[c];
  for (const auto& [key, site] : edge_site) {
    const auto& [from, to] = key;
    if (comp_of[from] != comp_of[to] || comp_size[comp_of[from]] < 2) {
      continue;
    }
    const auto& [path, line, fn_name] = site;
    out.push_back({path, line, kRule,
                   "lock-order cycle: " + from + " is held while acquiring " +
                       to + " in " + (fn_name.empty() ? "?" : fn_name) +
                       "(), and the reverse order exists elsewhere — "
                       "potential deadlock; pick one global order"});
  }
  return out;
}

}  // namespace a3cs_lint
