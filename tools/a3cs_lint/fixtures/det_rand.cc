// Fixture: det-rand must fire on libc RNG and std::random_device.
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;        // det-rand
  srand(42);                    // det-rand
  return rand() + static_cast<int>(rd());  // det-rand
}
