// arch-layering suppression fixture: the upward include carries a justified
// inline suppression, so even under src/nn/ it must stay silent.
// Deliberate upward edge for the test harness.  A3CS_LINT(arch-layering)
#include "serve/service.h"
#include "util/logging.h"

int answer() { return 42; }
