// conc-lock-order fixture, second half: the reverse acquisition order of
// lock_order_ab.cc. Either TU alone is fine; together they deadlock.
#include <mutex>

struct PoolA;
struct PoolB;

void drain(PoolA& a, PoolB& b);

void refill(PoolA& a, PoolB& b) {
  std::lock_guard<std::mutex> lb(b.mu_b);
  std::lock_guard<std::mutex> la(a.mu_a);
}
