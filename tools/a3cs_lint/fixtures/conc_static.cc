// Fixture: conc-static-local and conc-mutable-global must fire on
// unprotected mutable state (linted under a virtual src/ path) and stay
// silent on const/atomic/mutex-adjacent/reference declarations.
#include <atomic>
#include <mutex>
#include <string>

namespace fixture {

int g_call_count = 0;                     // conc-mutable-global
std::atomic<int> g_atomic_count{0};       // fine: atomic
const char* const kName = "fixture";      // fine: const
thread_local int t_depth = 0;             // fine: thread-local

int bump() {
  static int counter = 0;  // conc-static-local
  return ++counter;
}

int bump_guarded() {
  static std::mutex mu;
  static long guarded = 0;  // fine: mutex adjacent
  std::lock_guard<std::mutex> lock(mu);
  return static_cast<int>(++guarded);
}

const std::string& cached_name() {
  static const std::string name = "cached";  // fine: const
  return name;
}

}  // namespace fixture
