// C++20 lexer edge cases (see Lex.* tests). Every construct here used to
// have a plausible mislex: prefixes splitting into ident+string, spliced
// line comments leaking code tokens, raw-string delimiters closing early.
const int separated = 1'000'000;
const char* const utf8 = u8"ünïcode body";
const wchar_t* const wide = L"wide body";
const char16_t* const u16 = u"u16 body";
const char32_t* const u32 = U"u32 body";
const wchar_t wch = L'x';
const char16_t uch = u'y';
// spliced comment hides the next physical line: rand(); \
detach(); this line is still comment text
const int after_splice = 2;
const char* const raw = R"x(body with )" inside)x";
const char* const raw_prefixed = LR"y(wide raw )" body)y";
const char* const raw_u8 = u8R"(plain delim)";
const double hexfloat = 0x1.8p-3;
