// ser-field-coverage negative fixture: every data member — including both
// fields of the reachable aggregate Extent — is mentioned in save_state and
// load_state. Must produce zero findings.
#include <cstdint>
#include <iosfwd>

void put(std::ostream& os, const void* p, int n);
void get(std::istream& is, void* p, int n);

struct Extent {
  int rows = 0;
  int cols = 0;
};

class Grid {
 public:
  void save_state(std::ostream& os) const {
    put(os, &shape_.rows, 4);
    put(os, &shape_.cols, 4);
    put(os, &seed_, 8);
    put(os, &decay_, 8);
  }
  void load_state(std::istream& is) {
    get(is, &shape_.rows, 4);
    get(is, &shape_.cols, 4);
    get(is, &seed_, 8);
    get(is, &decay_, 8);
  }

 private:
  Extent shape_;
  uint64_t seed_ = 0;
  double decay_ = 0.5;
};
