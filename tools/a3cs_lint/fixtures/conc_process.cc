// Fixture: conc-raw-process must fire on raw process-lifecycle calls (linted
// under a virtual src/core/ path) and stay silent under src/fleet/ and on
// member calls that merely share a POSIX name.
#include <sys/wait.h>
#include <unistd.h>

struct FakeSupervisor {
  int fork() { return 0; }
  int waitpid(int) { return 0; }
};

int spawn_shard(const char* bin) {
  const int pid = fork();  // conc-raw-process
  if (pid == 0) {
    char* const argv[] = {nullptr};
    execv(bin, argv);  // conc-raw-process
  }
  int status = 0;
  waitpid(pid, &status, 0);  // conc-raw-process
  FakeSupervisor sup;
  sup.fork();        // member call: clean
  (&sup)->waitpid(0);  // member call: clean
  return status;
}
