// conc-lock-order fork-under-lock fixture: under src/fleet/ the fork() in
// spawn_locked must fire (the child inherits a locked mutex forever); the
// fork in spawn_clean — after the guard's scope closed — must not.
#include <mutex>
#include <unistd.h>

struct Registry {
  std::mutex mu;
  int workers = 0;
};

int spawn_locked(Registry& reg) {
  std::lock_guard<std::mutex> lock(reg.mu);
  ++reg.workers;
  return fork();
}

int spawn_clean(Registry& reg) {
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    ++reg.workers;
  }
  return fork();
}
