// Fixture: ser-raw-io must fire on raw byte IO in serialization layers
// (linted under a virtual src/ckpt/ path).
#include <cstdio>
#include <cstring>

struct Header {
  int version;
  long payload_len;
};

void write_header(std::FILE* f, const Header& h) {
  std::fwrite(&h, sizeof(h), 1, f);  // ser-raw-io: struct layout leaks
}

void read_header(std::FILE* f, Header* h) {
  char buf[sizeof(Header)];
  std::fread(buf, sizeof(buf), 1, f);   // ser-raw-io
  std::memcpy(h, buf, sizeof(Header));  // ser-raw-io
}
