// Fixture: conc-raw-thread must fire on raw threading primitives (linted
// under a virtual src/das/ path).
#include <future>
#include <thread>

void fan_out() {
  std::thread t([] {});            // conc-raw-thread
  t.detach();                      // conc-raw-thread
  auto f = std::async([] { return 1; });  // conc-raw-thread
  (void)f;
}
