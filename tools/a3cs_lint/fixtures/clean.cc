// Fixture: idiomatic repo code — must produce zero findings under any
// virtual path, including banned identifiers inside strings and comments,
// which the lexer strips before rules run.
#include <map>
#include <ostream>
#include <string>

namespace fixture {

// Comments may mention rand() or std::thread without tripping rules.
constexpr int kAnswer = 42;

class Engine {
 public:
  void save_state(std::ostream& out) const {
    for (const auto& [k, v] : table_) out << k << v;  // std::map: ordered
  }
  void load_state(std::istream& in);

 private:
  std::map<std::string, double> table_;
};

std::string describe() {
  return "calling rand() or std::thread here is just a string";
}

}  // namespace fixture
