// Fixture: det-time-seed must fire when an RNG seed is derived from a clock.
#include <chrono>
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed);
};

Rng make_rng() {
  const auto seed = static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  return Rng(seed);  // det-time-seed (seed near a clock read)
}
