// Fixture: hyg-pragma-once must fire — this header has no include guard.
inline int fixture_value() { return 42; }
