// Fixture: hyg-using-namespace must fire; the leading comment must not
// confuse the #pragma once check.
#pragma once

#include <string>

using namespace std;  // hyg-using-namespace

inline string fixture_name() { return "fixture"; }
