// ser-field-coverage positive fixture: decay_ is a data member of a class
// with a save_state/load_state pair but appears in neither body, and the
// reachable plain aggregate Extent has a cols field the bodies never touch.
#include <cstdint>
#include <iosfwd>

void put(std::ostream& os, const void* p, int n);
void get(std::istream& is, void* p, int n);

struct Extent {
  int rows = 0;
  int cols = 0;
};

class Grid {
 public:
  void save_state(std::ostream& os) const {
    put(os, &shape_.rows, 4);
    put(os, &seed_, 8);
  }
  void load_state(std::istream& is) {
    get(is, &shape_.rows, 4);
    get(is, &seed_, 8);
  }

 private:
  Extent shape_;
  uint64_t seed_ = 0;
  double decay_ = 0.5;
};
