// Fixture: det-unordered-iter must fire on hash-ordered iteration inside a
// save_state body, and stay silent for keyed lookups and for iteration in
// non-serialized functions.
#include <ostream>
#include <string>
#include <unordered_map>

struct Registry {
  std::unordered_map<std::string, double> values;

  void save_state(std::ostream& out) const {
    for (const auto& [k, v] : values) {  // det-unordered-iter
      out << k << v;
    }
  }

  double lookup(const std::string& key) const {
    return values.at(key);  // keyed access is fine anywhere
  }

  double sum_unserialized() const {
    double s = 0;
    for (const auto& [k, v] : values) s += v;  // fine: not a save path
    return s;
  }
};
