// Fixture for arch-intrinsics-scoped: SIMD intrinsics that are fine inside
// src/tensor/backend/ but violations anywhere else. The comment below must
// NOT fire — immintrin.h in prose is not an include.
#include <immintrin.h>

// Talking about immintrin.h here is harmless.

float hsum(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
  __m128 lo = _mm256_castps256_ps128(v);
  return _mm_cvtss_f32(lo);
}
