// ser-field-coverage suppression fixture: same shape as ser_cov.cc but both
// offending declarations carry justified inline suppressions, so the tree
// must lint clean.
#include <cstdint>
#include <iosfwd>

void put(std::ostream& os, const void* p, int n);
void get(std::istream& is, void* p, int n);

struct Extent {
  int rows = 0;
  int cols = 0;  // derived from rows at load time  A3CS_LINT(ser-field-coverage)
};

class Grid {
 public:
  void save_state(std::ostream& os) const {
    put(os, &shape_.rows, 4);
    put(os, &seed_, 8);
  }
  void load_state(std::istream& is) {
    get(is, &shape_.rows, 4);
    get(is, &seed_, 8);
  }

 private:
  Extent shape_;
  uint64_t seed_ = 0;
  double decay_ = 0.5;  // tuning knob, reset from config  A3CS_LINT(ser-field-coverage)
};
