// Fixture: det-wall-clock must fire in numeric code (linted under a
// virtual src/nn/ path) and stay silent under bench/.
#include <chrono>

double fused_step() {
  const auto t0 = std::chrono::steady_clock::now();  // det-wall-clock
  (void)t0;
  return 0.0;
}
