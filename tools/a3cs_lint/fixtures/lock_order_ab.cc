// conc-lock-order fixture, first half: acquires PoolA::mu_a then PoolB::mu_b.
// Paired with lock_order_ba.cc (the reverse order) it forms a cycle.
#include <mutex>

struct PoolA {
  std::mutex mu_a;
};
struct PoolB {
  std::mutex mu_b;
};

void transfer(PoolA& a, PoolB& b) {
  std::lock_guard<std::mutex> la(a.mu_a);
  std::lock_guard<std::mutex> lb(b.mu_b);
}
