// conc-lock-order suppression fixture: fork under a held lock, but the call
// site carries a justified inline suppression, so it must stay silent even
// under src/fleet/.
#include <mutex>
#include <unistd.h>

struct Registry {
  std::mutex mu;
  int workers = 0;
};

int spawn_locked(Registry& reg) {
  std::lock_guard<std::mutex> lock(reg.mu);
  ++reg.workers;
  // child execs immediately, never touches the registry  A3CS_LINT(conc-lock-order)
  return fork();
}
