// Fixture: ser-pair must fire on one-sided serialization interfaces and
// stay silent on paired ones.
#include <istream>
#include <ostream>

class SaveOnly {
 public:
  void save_state(std::ostream& out) const;  // ser-pair: no load_state
};

class LoadOnly {
 public:
  void load_state(std::istream& in);  // ser-pair: no save_state
};

class Paired {
 public:
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);
};

class CallerOnly {
 public:
  // Calling save_state on a member inside an inline method is not a
  // declaration and must not count toward the pairing check.
  void snapshot(std::ostream& out, Paired& p) { p.save_state(out); }
};
