// Fixture: every violation here carries an inline A3CS_LINT suppression —
// the file must lint clean, demonstrating both same-line and line-above
// marker placement.
#include <cstdlib>
#include <thread>

int draw() {
  return rand();  // A3CS_LINT(det-rand) fixture exercises same-line markers
}

void fan_out() {
  // A3CS_LINT(conc-raw-thread) fixture exercises line-above markers
  std::thread t([] {});
  t.join();  // A3CS_LINT(conc-raw-thread)
}
