// Fixture: det-bench-clock must fire on wall clocks in bench/ code (linted
// under a virtual bench/ path) and stay silent elsewhere (e.g. src/obs/,
// where the trace writers legitimately stamp wall time). steady_clock is
// the sanctioned monotonic source and must never trip the rule.
#include <chrono>
#include <ctime>

double sample_wall() {
  const auto t0 = std::chrono::system_clock::now();  // det-bench-clock
  const std::time_t stamp = std::time(nullptr);      // det-bench-clock
  (void)t0;
  return static_cast<double>(stamp);
}

double sample_monotonic() {
  const auto t0 = std::chrono::steady_clock::now();  // fine: monotonic
  (void)t0;
  return 0.0;
}
