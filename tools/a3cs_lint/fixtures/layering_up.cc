// arch-layering positive fixture: linted under src/nn/ this include points
// several ranks up the DAG (serve); under src/fleet/ (same rank as serve) or
// with a suppression it must stay silent.
#include "serve/service.h"
#include "util/logging.h"

int answer() { return 42; }
