#include "lexer.h"

#include <cctype>

namespace a3cs_lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Splits the body of an A3CS_LINT(...) marker into trimmed rule ids.
std::set<std::string> parse_rule_list(const std::string& body) {
  std::set<std::string> ids;
  std::string cur;
  for (const char c : body) {
    if (c == ',') {
      if (!cur.empty()) ids.insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  if (!cur.empty()) ids.insert(cur);
  return ids;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexedFile run() {
    split_lines();
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (c == '"') {
        string_literal();
      } else if (c == '\'') {
        char_literal();
      } else if (c == 'R' && peek(1) == '"' && !prev_ident_char()) {
        ++pos_;  // 'R'
        raw_string_literal();
      } else if (ident_start(c)) {
        identifier();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
      } else {
        punct();
      }
    }
    finalize_suppressions();
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  bool prev_ident_char() const {
    // Distinguishes a raw-string prefix `R"` from an identifier ending in R
    // (e.g. `FOOBAR"x"` never happens, but `LR"` / `myR` could mislead).
    return pos_ > 0 && ident_char(src_[pos_ - 1]);
  }

  void split_lines() {
    std::string cur;
    for (const char c : src_) {
      if (c == '\n') {
        out_.lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    out_.lines.push_back(cur);
  }

  void push(TokKind kind, std::string text) {
    out_.tokens.push_back(Token{kind, std::move(text), line_});
  }

  void scan_suppression(const std::string& comment, int line) {
    std::size_t at = 0;
    while ((at = comment.find("A3CS_LINT(", at)) != std::string::npos) {
      const std::size_t open = at + 9;  // index of '('
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) break;
      for (const auto& id :
           parse_rule_list(comment.substr(open + 1, close - open - 1))) {
        comment_rules_[line].insert(id);
      }
      at = close + 1;
    }
  }

  void line_comment() {
    const int start = line_;
    std::string text;
    for (;;) {
      while (pos_ < src_.size() && src_[pos_] != '\n') text += src_[pos_++];
      // Phase-2 line splicing runs before comment recognition, so a
      // backslash immediately before the newline continues the comment onto
      // the next physical line — which must NOT be lexed as code.
      std::string tail = text;
      while (!tail.empty() && tail.back() == '\r') tail.pop_back();
      if (pos_ < src_.size() && !tail.empty() && tail.back() == '\\') {
        text = std::move(tail);
        text.pop_back();  // the splice backslash is not comment text
        ++pos_;           // consume '\n'
        ++line_;
        continue;
      }
      break;
    }
    scan_suppression(text, start);
  }

  void block_comment() {
    const int start = line_;
    std::string text;
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    scan_suppression(text, start);
  }

  void string_literal() {
    const int start = line_;
    std::string text;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') {  // unterminated; bail at line end
        break;
      }
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    out_.tokens.push_back(Token{TokKind::kString, std::move(text), start});
  }

  // Called with pos_ at the opening '"' (the caller consumed any R/u8R/LR
  // prefix). The delimiter may itself contain ')' -free text that also
  // appears inside the body — only the exact `)delim"` sequence closes.
  void raw_string_literal() {
    const int start = line_;
    ++pos_;  // '"'
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string close = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size() && src_.compare(pos_, close.size(), close) != 0) {
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    if (pos_ < src_.size()) pos_ += close.size();
    out_.tokens.push_back(Token{TokKind::kString, std::move(text), start});
  }

  void char_literal() {
    const int start = line_;
    std::string text;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    out_.tokens.push_back(Token{TokKind::kChar, std::move(text), start});
  }

  // u8/u/U/L (and their R-suffixed raw forms) directly attached to a quote
  // are encoding prefixes, not identifiers: `u8"x"` is one string token.
  bool is_string_prefix(const std::string& s) const {
    return s == "u8" || s == "u" || s == "U" || s == "L";
  }
  bool is_raw_string_prefix(const std::string& s) const {
    return s == "u8R" || s == "uR" || s == "UR" || s == "LR";
  }

  void identifier() {
    std::string text;
    while (pos_ < src_.size() && ident_char(src_[pos_])) text += src_[pos_++];
    if (pos_ < src_.size() && src_[pos_] == '"') {
      if (is_raw_string_prefix(text)) {
        raw_string_literal();
        return;
      }
      if (is_string_prefix(text)) {
        string_literal();
        return;
      }
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' && is_string_prefix(text)) {
      char_literal();
      return;
    }
    push(TokKind::kIdent, std::move(text));
  }

  void number() {
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        text += c;
        ++pos_;
      } else if ((c == '+' || c == '-') && !text.empty() &&
                 (text.back() == 'e' || text.back() == 'E' ||
                  text.back() == 'p' || text.back() == 'P')) {
        text += c;
        ++pos_;
      } else {
        break;
      }
    }
    push(TokKind::kNumber, std::move(text));
  }

  void punct() {
    if (src_[pos_] == ':' && peek(1) == ':') {
      push(TokKind::kPunct, "::");
      pos_ += 2;
      return;
    }
    push(TokKind::kPunct, std::string(1, src_[pos_]));
    ++pos_;
  }

  // A suppression comment silences its own line; when nothing but the
  // comment sits on that line it also silences the next line, so markers can
  // be placed above long statements.
  void finalize_suppressions() {
    std::set<int> code_lines;
    for (const Token& t : out_.tokens) code_lines.insert(t.line);
    for (const auto& [line, ids] : comment_rules_) {
      auto& here = out_.suppressions[line];
      here.insert(ids.begin(), ids.end());
      if (code_lines.count(line) == 0) {
        auto& next = out_.suppressions[line + 1];
        next.insert(ids.begin(), ids.end());
      }
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  LexedFile out_;
  std::map<int, std::set<std::string>> comment_rules_;
};

}  // namespace

LexedFile lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace a3cs_lint
