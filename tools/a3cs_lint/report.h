// Machine-readable findings output for a3cs_lint --json.
//
// The schema is versioned ("a3cs-lint/1") and the rendering is byte-stable:
// findings are emitted in the order given (the driver sorts them), keys are
// in a fixed order, and strings are escaped deterministically — so CI can
// diff two runs' JSON as bytes, exactly like the text report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rules.h"

namespace a3cs_lint {

inline constexpr const char* kJsonSchema = "a3cs-lint/1";

// {"schema":"a3cs-lint/1","files":N,"findings":[{"path":...,"line":N,
// "rule":...,"message":...},...]} with a trailing newline.
std::string render_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned);

// Strict parser for exactly the shape render_json emits (the round-trip
// contract): returns false on any structural mismatch. `files_scanned` may
// be null.
bool parse_json(const std::string& text, std::vector<Finding>* findings,
                std::size_t* files_scanned);

}  // namespace a3cs_lint
