// ser-field-coverage: every data member of a class with a
// save_state/load_state pair must be mentioned in *both* bodies (the
// add-a-field-forget-to-serialize bug), and so must the members of plain
// aggregates such a class stores — the fields the layout fingerprint only
// protects for section_file.h itself.
//
// "Mentioned" is identifier presence in the body's token set: delegation
// (`opt_.save_state(w)`), helper calls (`put_hw_eval(best_seen_eval_, ...)`)
// and direct writes all count. Static, const/constexpr and reference
// members are exempt (not round-trip state). Deliberately unsaved members
// carry an inline `// A3CS_LINT(ser-field-coverage)` at the declaration.
#include <algorithm>
#include <iterator>
#include <tuple>

#include "graph.h"

namespace a3cs_lint {
namespace {

constexpr const char* kRule = "ser-field-coverage";

struct ClassSite {
  const FileModel* file = nullptr;
  const ClassModel* cls = nullptr;
};

// A body's merged identifier set (a class may define save_state inline in
// the header of one TU and helpers out-of-line — all bodies of the same
// (class, kind) in scope contribute).
struct Bodies {
  std::set<std::string> save, load;
  bool has_save = false, has_load = false;
};

// Prefer bodies from the declaring file, then its module, then anywhere —
// same-name classes in different modules must not cross-match.
Bodies collect_bodies(const std::vector<FileModel>& files,
                      const ClassSite& site) {
  Bodies out;
  auto scan = [&](auto pred) {
    for (const FileModel& f : files) {
      if (!pred(f)) continue;
      for (const SerBody& b : f.ser_bodies) {
        if (b.class_name != site.cls->name) continue;
        if (b.is_save) {
          out.save.insert(b.idents.begin(), b.idents.end());
          out.has_save = true;
        } else {
          out.load.insert(b.idents.begin(), b.idents.end());
          out.has_load = true;
        }
      }
    }
  };
  scan([&](const FileModel& f) { return f.path == site.file->path; });
  if (!out.has_save || !out.has_load) {
    scan([&](const FileModel& f) {
      return f.path != site.file->path && f.module == site.file->module;
    });
  }
  return out;
}

}  // namespace

std::vector<Finding> check_ser_coverage(const std::vector<FileModel>& files) {
  std::vector<Finding> out;

  // name -> declaration sites (src/ only; tests build deliberate fakes).
  std::multimap<std::string, ClassSite> class_index;
  for (const FileModel& f : files) {
    if (f.module.empty()) continue;
    for (const ClassModel& cls : f.classes) {
      if (!cls.name.empty()) class_index.emplace(cls.name, ClassSite{&f, &cls});
    }
  }

  // Resolve a member's type to a plain aggregate (no methods, no own
  // save/load pair) declared in `module`; nullptr when it isn't one.
  auto resolve_aggregate = [&](const std::vector<std::string>& type_idents,
                               const std::string& module) -> ClassSite {
    if (type_idents.empty()) return {};
    auto [lo, hi] = class_index.equal_range(type_idents.back());
    const ClassSite* best = nullptr;
    for (auto it = lo; it != hi; ++it) {
      if (it->second.file->module != module) continue;
      if (best) return {};  // ambiguous within the module: stay silent
      best = &it->second;
    }
    if (!best) return {};
    const ClassModel& cls = *best->cls;
    if (cls.has_methods || cls.has_save || cls.has_load) return {};
    return *best;
  };

  for (const FileModel& f : files) {
    if (f.module.empty()) continue;
    for (const ClassModel& cls : f.classes) {
      if (!cls.has_save || !cls.has_load || cls.name.empty()) continue;
      const ClassSite root{&f, &cls};
      const Bodies bodies = collect_bodies(files, root);
      // Declared-only pairs (interfaces, fixtures without bodies in scope)
      // can't be checked; ser-pair already guards declaration symmetry.
      if (!bodies.has_save || !bodies.has_load) continue;

      // Walk the root class plus plain aggregates reachable through
      // serialized members, checking every field against the root bodies.
      std::set<std::string> visited{cls.name};
      std::vector<ClassSite> work{root};
      while (!work.empty()) {
        const ClassSite cur = work.back();
        work.pop_back();
        for (const FieldDecl& field : cur.cls->fields) {
          if (field.is_static || field.is_const || field.is_reference) {
            continue;
          }
          const bool in_save = bodies.save.count(field.name) > 0;
          const bool in_load = bodies.load.count(field.name) > 0;
          if (!in_save || !in_load) {
            const char* which = (!in_save && !in_load) ? "save_state or "
                                                         "load_state"
                                : !in_save ? "save_state"
                                           : "load_state";
            out.push_back(
                {cur.file->path, field.line, kRule,
                 "field " + cur.cls->name + "::" + field.name +
                     " is never mentioned in " + which + " of " + cls.name +
                     " — serialize it or suppress with a justification"});
            continue;
          }
          const ClassSite agg =
              resolve_aggregate(field.type_idents, cur.file->module);
          if (agg.cls && !visited.count(agg.cls->name)) {
            visited.insert(agg.cls->name);
            work.push_back(agg);
          }
        }
      }
    }
  }
  return out;
}

// ------------------------------------------------------------- lint_tree ---

std::vector<Finding> lint_tree(const std::vector<FileModel>& files,
                               const std::string& layers_text) {
  std::vector<Finding> all = check_layering(files, layers_text);
  {
    std::vector<Finding> more = check_lock_order(files);
    all.insert(all.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
    more = check_ser_coverage(files);
    all.insert(all.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  }

  std::map<std::string, const LexedFile*> lex_of;
  for (const FileModel& f : files) lex_of[f.path] = &f.lex;

  std::vector<Finding> kept;
  for (Finding& f : all) {
    const auto it = lex_of.find(f.path);
    if (it != lex_of.end() && is_suppressed(*it->second, f.line, f.rule)) {
      continue;
    }
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule, a.message) <
           std::tie(b.path, b.line, b.rule, b.message);
  });
  return kept;
}

}  // namespace a3cs_lint
