#include "rules.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "lexer.h"
#include "model.h"

namespace a3cs_lint {
namespace {

// ------------------------------------------------------------- path scopes --

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_header(const std::string& path) {
  return path.size() > 2 && (path.rfind(".h") == path.size() - 2 ||
                             (path.size() > 4 &&
                              path.rfind(".hpp") == path.size() - 4));
}

// Numeric/compute directories where any clock read is a determinism smell.
bool in_numeric_dir(const std::string& p) {
  return starts_with(p, "src/tensor/") || starts_with(p, "src/nn/") ||
         starts_with(p, "src/nas/") || starts_with(p, "src/rl/") ||
         starts_with(p, "src/das/") || starts_with(p, "src/accel/") ||
         starts_with(p, "src/arcade/");
}

bool is_thread_pool_file(const std::string& p) {
  return p == "src/util/thread_pool.h" || p == "src/util/thread_pool.cc";
}

bool is_sio_file(const std::string& p) {
  return p == "src/util/state_io.h" || p == "src/util/state_io.cc";
}

// ------------------------------------------------------------ rule helpers --
// (The scope walker itself lives in model.cc — rules consume the ScopeInfo
// carried by the FileModel.)

struct Ctx {
  const std::string& path;
  const LexedFile& lex;
  const ScopeInfo& scopes;
  std::vector<Finding>* out;

  const std::vector<Token>& toks() const { return lex.tokens; }

  void report(int line, const char* rule, std::string msg) const {
    out->push_back(Finding{path, line, rule, std::move(msg)});
  }

  bool ident_at(std::size_t i, const char* text) const {
    return i < toks().size() && toks()[i].kind == TokKind::kIdent &&
           toks()[i].text == text;
  }
  bool punct_at(std::size_t i, const char* text) const {
    return i < toks().size() && toks()[i].kind == TokKind::kPunct &&
           toks()[i].text == text;
  }
  // `std :: name` immediately before token i+? — true when toks[i] is `name`
  // qualified by std::.
  bool std_qualified(std::size_t i) const {
    return i >= 2 && punct_at(i - 1, "::") && ident_at(i - 2, "std");
  }
  // Raw-source adjacency: any of `needles` appears within +-window lines.
  bool near_line(int line, int window,
                 const std::vector<std::string>& needles) const {
    const int lo = std::max(1, line - window);
    const int hi = std::min(static_cast<int>(lex.lines.size()),
                            line + window);
    for (int l = lo; l <= hi; ++l) {
      const std::string& text = lex.lines[static_cast<std::size_t>(l - 1)];
      for (const std::string& needle : needles) {
        if (text.find(needle) != std::string::npos) return true;
      }
    }
    return false;
  }
};

bool line_is_preprocessor(const Ctx& c, int line) {
  const std::string& text = c.lex.lines[static_cast<std::size_t>(line - 1)];
  const std::size_t first = text.find_first_not_of(" \t");
  return first != std::string::npos && text[first] == '#';
}

// ---------------------------------------------- arch-intrinsics-scoped --

// SIMD intrinsics are confined to src/tensor/backend/: every other layer
// stays portable and reaches vector code through the Backend kernel table,
// so a build without AVX2 only has to neuter one TU (kernels_avx2.cc
// compiles to a nullptr stub) instead of auditing the whole tree.
void rule_arch_intrinsics_scoped(const Ctx& c) {
  if (starts_with(c.path, "src/tensor/backend/")) return;
  // The lexer splits `#include <immintrin.h>` into punctuation + idents, so
  // match the header name textually — but only on preprocessor lines, so a
  // comment mentioning the header stays silent.
  static const char* kHeaders[] = {"immintrin.h", "x86intrin.h",
                                   "avxintrin.h", "emmintrin.h",
                                   "xmmintrin.h", "arm_neon.h"};
  for (std::size_t l = 1; l <= c.lex.lines.size(); ++l) {
    if (!line_is_preprocessor(c, static_cast<int>(l))) continue;
    const std::string& text = c.lex.lines[l - 1];
    for (const char* header : kHeaders) {
      if (text.find(header) != std::string::npos) {
        c.report(static_cast<int>(l), "arch-intrinsics-scoped",
                 std::string("#include <") + header +
                     "> outside src/tensor/backend/ — SIMD code lives "
                     "behind the kernel-backend table");
      }
    }
  }
  const auto& toks = c.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    const bool intrinsic =
        t.rfind("_mm_", 0) == 0 || t.rfind("_mm256_", 0) == 0 ||
        t.rfind("_mm512_", 0) == 0 || t.rfind("__m128", 0) == 0 ||
        t.rfind("__m256", 0) == 0 || t.rfind("__m512", 0) == 0;
    if (intrinsic) {
      c.report(toks[i].line, "arch-intrinsics-scoped",
               t + " outside src/tensor/backend/ — add a Backend kernel "
                   "entry instead of inlining SIMD in portable code");
    }
  }
}

// ---------------------------------------------------------------- det-rand --

void rule_det_rand(const Ctx& c) {
  if (starts_with(c.path, "src/util/")) return;
  const auto& toks = c.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if ((t == "rand" || t == "rand_r" || t == "drand48" || t == "lrand48") &&
        c.punct_at(i + 1, "(")) {
      c.report(toks[i].line, "det-rand",
               t + "() is seed-hostile; draw from an explicitly seeded "
                   "util::Rng instead");
    } else if (t == "srand" && c.punct_at(i + 1, "(")) {
      c.report(toks[i].line, "det-rand",
               "srand() mutates hidden global RNG state; seed a util::Rng "
               "instance instead");
    } else if (t == "random_device") {
      c.report(toks[i].line, "det-rand",
               "std::random_device is non-reproducible; derive streams from "
               "the run seed via util::Rng::split()");
    }
  }
}

// ----------------------------------------------------------- det-time-seed --

bool is_clock_token(const Ctx& c, std::size_t i) {
  if (c.toks()[i].kind != TokKind::kIdent) return false;
  const std::string& t = c.toks()[i].text;
  if (t == "system_clock" || t == "steady_clock" ||
      t == "high_resolution_clock" || t == "gettimeofday" ||
      t == "clock_gettime" || t == "timespec_get" || t == "__rdtsc" ||
      t == "rdtsc") {
    return true;
  }
  return (t == "time" || t == "clock") && c.punct_at(i + 1, "(");
}

void rule_det_time_seed(const Ctx& c) {
  const auto& toks = c.toks();
  // Wide enough to span `seed = static_cast<std::uint64_t>(
  // std::chrono::system_clock::now()...)` — the qualified-name tokens alone
  // put the clock 13 tokens past `seed`.
  constexpr std::size_t kWindow = 18;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    const bool seedish = t == "seed" || t == "reseed" || t == "set_seed" ||
                         (t == "Rng" && c.punct_at(i + 1, "("));
    if (!seedish) continue;
    const std::size_t lo = i >= kWindow ? i - kWindow : 0;
    const std::size_t hi = std::min(toks.size(), i + kWindow + 1);
    for (std::size_t j = lo; j < hi; ++j) {
      if (is_clock_token(c, j)) {
        c.report(toks[i].line, "det-time-seed",
                 "seed derived from a clock — runs become unreproducible; "
                 "thread the run seed through explicitly");
        break;
      }
    }
  }
}

// ---------------------------------------------------------- det-wall-clock --

void rule_det_wall_clock(const Ctx& c) {
  if (!in_numeric_dir(c.path)) return;
  const auto& toks = c.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_clock_token(c, i)) {
      c.report(toks[i].line, "det-wall-clock",
               "clock read in numeric code (" + toks[i].text +
                   ") — results must not depend on time; measure in obs/ "
                   "or bench/ instead");
    }
  }
}

// ---------------------------------------------------------- det-bench-clock --

// Bench code must read time through the injectable monotonic clock
// (obs::perf::BenchSuite::now_ns) — a raw wall clock makes measurements
// NTP-step sensitive and the registry untestable with a fake clock.
void rule_det_bench_clock(const Ctx& c) {
  if (!starts_with(c.path, "bench/")) return;
  const auto& toks = c.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t == "system_clock" || t == "gettimeofday" || t == "timespec_get" ||
        (t == "time" && c.punct_at(i + 1, "(") && c.std_qualified(i))) {
      c.report(toks[i].line, "det-bench-clock",
               "wall clock (" + t +
                   ") in bench code — sample time via the injectable "
                   "monotonic obs::perf::BenchSuite::now_ns() so runs are "
                   "NTP-immune and fake-clock testable");
    }
  }
}

// ------------------------------------------------------- det-unordered-iter --

void rule_det_unordered_iter(const Ctx& c) {
  const auto& toks = c.toks();
  const bool obs_path = starts_with(c.path, "src/obs/");

  // Names declared anywhere in this file with an unordered container type.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        toks[i].text.rfind("unordered_", 0) != 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (c.punct_at(j, "<")) {  // skip template argument list
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (c.punct_at(j, "<")) ++depth;
        else if (c.punct_at(j, ">") && --depth == 0) { ++j; break; }
      }
    }
    while (c.punct_at(j, "&") || c.punct_at(j, "*") || c.punct_at(j, "::") ||
           (j < toks.size() && toks[j].kind == TokKind::kIdent &&
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
        !c.punct_at(j + 1, "(")) {
      unordered_names.insert(toks[j].text);
    }
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!c.ident_at(i, "for") || !c.punct_at(i + 1, "(")) continue;
    if (!(obs_path || c.scopes.in_ser_fn[i])) continue;
    // Find the range-for ':' at paren depth 1, then scan the range
    // expression for unordered container names.
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (c.punct_at(j, "(")) ++depth;
      else if (c.punct_at(j, ")")) {
        if (--depth == 0) { close = j; break; }
      } else if (c.punct_at(j, ":") && depth == 1 && colon == 0) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      if (unordered_names.count(toks[j].text) ||
          toks[j].text.rfind("unordered_", 0) == 0) {
        c.report(toks[i].line, "det-unordered-iter",
                 "iteration over an unordered container in a serialized/"
                 "emitted path — order is hash-seed dependent; iterate a "
                 "sorted view or use std::map");
        break;
      }
    }
  }
}

// ----------------------------------------------------------------- ser-pair --

void rule_ser_pair(const Ctx& c) {
  for (const auto& cls : c.scopes.classes) {
    if (cls.has_save == cls.has_load) continue;
    const std::string present = cls.has_save ? "save_state" : "load_state";
    const std::string missing = cls.has_save ? "load_state" : "save_state";
    const std::string name = cls.name.empty() ? "<anonymous>" : cls.name;
    c.report(cls.line, "ser-pair",
             "class " + name + " declares " + present + " without " + missing +
                 " — checkpoint round-trips require both");
  }
}

// --------------------------------------------------------------- ser-raw-io --

void rule_ser_raw_io(const Ctx& c) {
  const bool scoped = (starts_with(c.path, "src/ckpt/") ||
                       starts_with(c.path, "src/util/")) &&
                      !is_sio_file(c.path);
  if (!scoped) return;
  const auto& toks = c.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if ((t == "fwrite" || t == "fread" || t == "memcpy") &&
        c.punct_at(i + 1, "(")) {
      c.report(toks[i].line, "ser-raw-io",
               t + " in a serialization layer bypasses the explicit-LE "
                   "util::sio helpers; struct layout / endianness would leak "
                   "into the on-disk format");
    }
  }
}

// ---------------------------------------------------------- conc-raw-thread --

void rule_conc_raw_thread(const Ctx& c) {
  if (is_thread_pool_file(c.path)) return;
  const auto& toks = c.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if ((t == "thread" || t == "jthread" || t == "async") &&
        c.std_qualified(i)) {
      c.report(toks[i].line, "conc-raw-thread",
               "std::" + t + " outside util/thread_pool — parallel work must "
                             "go through ThreadPool::parallel_for so the "
                             "deterministic sharding contract holds");
    } else if (t == "pthread_create") {
      c.report(toks[i].line, "conc-raw-thread",
               "pthread_create outside util/thread_pool — use the "
               "deterministic ThreadPool instead");
    } else if (t == "detach" && c.punct_at(i + 1, "(") &&
               (c.punct_at(i - 1, ".") ||
                (c.punct_at(i - 1, ">") && c.punct_at(i - 2, "-")))) {
      c.report(toks[i].line, "conc-raw-thread",
               "detached threads outlive their owner and cannot be joined "
               "at checkpoint barriers — never detach");
    }
  }
}

// --------------------------------------------------------- conc-raw-process --

void rule_conc_raw_process(const Ctx& c) {
  if (starts_with(c.path, "src/fleet/")) return;
  static const std::vector<std::string> kProcessCalls = {
      "fork",   "vfork", "waitpid",     "wait4",        "waitid",
      "execl",  "execlp", "execle",     "execv",        "execvp",
      "execvpe", "execve", "posix_spawn", "posix_spawnp"};
  const auto& toks = c.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (std::find(kProcessCalls.begin(), kProcessCalls.end(), t) ==
        kProcessCalls.end()) {
      continue;
    }
    if (!c.punct_at(i + 1, "(")) continue;
    // `obj.fork(...)` / `obj->waitpid(...)` are member calls on some other
    // abstraction, not the raw POSIX API.
    if (c.punct_at(i - 1, ".") ||
        (c.punct_at(i - 1, ">") && c.punct_at(i - 2, "-"))) {
      continue;
    }
    // A declaration (`int fork() {...}`, `pid_t waitpid(...)`) has a type
    // name directly before it; a call never does (except after `return`).
    if (i > 0 && toks[i - 1].kind == TokKind::kIdent &&
        toks[i - 1].text != "return") {
      continue;
    }
    c.report(toks[i].line, "conc-raw-process",
             t + " outside src/fleet/ — child-process lifecycle (spawn, "
                 "reap, restart, kill-on-hang) must go through the "
                 "FleetSupervisor so SIGCHLD handling and zombie reaping "
                 "stay in one place");
  }
}

// -------------------------------------------------------- conc-static-local --

const std::vector<std::string>& sync_needles() {
  static const std::vector<std::string> needles = {
      "mutex", "atomic", "lock_guard", "unique_lock", "scoped_lock",
      "call_once", "once_flag"};
  return needles;
}

bool decl_tokens_safe(const Ctx& c, std::size_t begin, std::size_t end) {
  for (std::size_t j = begin; j < end; ++j) {
    const Token& t = c.toks()[j];
    if (t.kind == TokKind::kIdent &&
        (t.text == "const" || t.text == "constexpr" || t.text == "atomic" ||
         t.text == "mutex" || t.text == "shared_mutex" ||
         t.text == "recursive_mutex" || t.text == "once_flag" ||
         t.text == "condition_variable" || t.text == "condition_variable_any")) {
      return true;
    }
    // A reference declaration (`static obs::Counter& hits = ...`) binds a
    // name to an object owned elsewhere — the registry idiom; allowed.
    if (t.kind == TokKind::kPunct && t.text == "&") return true;
  }
  return false;
}

void rule_conc_static_local(const Ctx& c) {
  if (!starts_with(c.path, "src/")) return;
  const auto& toks = c.toks();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!c.ident_at(i, "static") || !c.scopes.in_function[i]) continue;
    // Declaration tokens run to the first top-level `=`, `;` or `{`.
    std::size_t end = i + 1;
    int paren = 0, angle = 0;
    for (; end < toks.size(); ++end) {
      const Token& t = toks[end];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(") ++paren;
      else if (t.text == ")") --paren;
      else if (t.text == "<") ++angle;
      else if (t.text == ">") angle = std::max(0, angle - 1);
      else if ((t.text == "=" || t.text == ";" || t.text == "{") &&
               paren == 0 && angle == 0) {
        break;
      }
    }
    if (decl_tokens_safe(c, i + 1, end)) continue;
    if (c.near_line(toks[i].line, 4, sync_needles())) continue;
    c.report(toks[i].line, "conc-static-local",
             "mutable function-local static without std::atomic/mutex "
             "protection nearby — racy under the thread pool and invisible "
             "to checkpoints");
  }
}

// ------------------------------------------------------ conc-mutable-global --

void rule_conc_mutable_global(const Ctx& c) {
  if (!starts_with(c.path, "src/")) return;
  const auto& toks = c.toks();
  const std::size_t n = toks.size();
  static const std::set<std::string> kDeclKeywords = {
      "using",   "typedef",  "class",  "struct",   "enum",     "namespace",
      "template","extern",   "friend", "operator", "static_assert",
      "concept", "requires", "union"};
  // thread_local state is per-thread (not shared) and volatile
  // std::sig_atomic_t is the one sanctioned signal-flag type.
  static const std::set<std::string> kSafeTypes = {
      "const",        "constexpr",   "atomic", "mutex", "shared_mutex",
      "recursive_mutex", "once_flag", "condition_variable", "thread_local",
      "sig_atomic_t"};

  std::size_t i = 0;
  while (i < n) {
    // A candidate declaration starts with an identifier at namespace scope
    // on a non-preprocessor line.
    if (toks[i].kind != TokKind::kIdent || !c.scopes.at_ns_scope[i] ||
        line_is_preprocessor(c, toks[i].line)) {
      ++i;
      continue;
    }
    bool has_paren = false, has_eq = false, safe = false, keyword = false;
    bool abandoned = false;
    int paren = 0, brace = 0;
    std::size_t j = i;
    for (; j < n; ++j) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kIdent) {
        if (kDeclKeywords.count(t.text)) keyword = true;
        if (kSafeTypes.count(t.text)) safe = true;
        continue;
      }
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(") {
        if (!has_eq) has_paren = true;
        ++paren;
      } else if (t.text == ")") {
        --paren;
      } else if (t.text == "=" && paren == 0 && brace == 0) {
        has_eq = true;
      } else if (t.text == "{") {
        if (keyword || (has_paren && !has_eq)) {
          // namespace/class head or function definition body — not a
          // variable; resume scanning after the brace token (the body's
          // tokens fail the scope test on their own).
          abandoned = true;
          break;
        }
        ++brace;  // brace initializer
      } else if (t.text == "}") {
        --brace;
      } else if (t.text == ";" && paren == 0 && brace == 0) {
        break;
      }
    }
    if (abandoned || j >= n) {
      i = j + 1;
      continue;
    }
    if (!keyword && !safe && !has_paren) {
      c.report(toks[i].line, "conc-mutable-global",
               "mutable namespace-scope variable — shared state must be "
               "std::atomic, mutex-guarded, or const");
    }
    i = j + 1;
  }
}

// ---------------------------------------------------------- hygiene rules --

void rule_hyg_pragma_once(const Ctx& c) {
  if (!is_header(c.path)) return;
  const auto& toks = c.toks();
  const bool ok = toks.size() >= 3 && c.punct_at(0, "#") &&
                  c.ident_at(1, "pragma") && c.ident_at(2, "once");
  if (!ok) {
    c.report(1, "hyg-pragma-once",
             "header must start with #pragma once (before any code)");
  }
}

void rule_hyg_using_namespace(const Ctx& c) {
  if (!is_header(c.path)) return;
  const auto& toks = c.toks();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (c.ident_at(i, "using") && c.ident_at(i + 1, "namespace")) {
      c.report(toks[i].line, "hyg-using-namespace",
               "using-namespace in a header leaks into every includer");
    }
  }
}

}  // namespace

// ------------------------------------------------------------------ driver --

std::vector<Finding> lint_file_model(const FileModel& model) {
  std::vector<Finding> all;
  const Ctx ctx{model.path, model.lex, model.scopes, &all};

  rule_arch_intrinsics_scoped(ctx);
  rule_det_rand(ctx);
  rule_det_time_seed(ctx);
  rule_det_wall_clock(ctx);
  rule_det_bench_clock(ctx);
  rule_det_unordered_iter(ctx);
  rule_ser_pair(ctx);
  rule_ser_raw_io(ctx);
  rule_conc_raw_thread(ctx);
  rule_conc_raw_process(ctx);
  rule_conc_static_local(ctx);
  rule_conc_mutable_global(ctx);
  rule_hyg_pragma_once(ctx);
  rule_hyg_using_namespace(ctx);

  std::vector<Finding> kept;
  for (auto& f : all) {
    if (is_suppressed(model.lex, f.line, f.rule)) continue;
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return kept;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source) {
  return lint_file_model(build_file_model(path, source));
}

std::vector<std::pair<std::string, std::string>> rule_catalog() {
  return {
      {"arch-intrinsics-scoped",
       "SIMD intrinsics (<immintrin.h>, _mm*/__m*) outside "
       "src/tensor/backend/"},
      {"arch-layering",
       "src/ include that violates the declared layer DAG "
       "(tools/a3cs_lint/layers.txt) or forms a module cycle"},
      {"conc-lock-order",
       "mutex pair acquired in conflicting orders across the repo, or a "
       "lock held across fork() in src/fleet/"},
      {"conc-mutable-global",
       "mutable namespace-scope variable in src/ without atomic/mutex type"},
      {"conc-raw-process",
       "fork/exec*/waitpid/posix_spawn outside src/fleet/"},
      {"conc-raw-thread",
       "std::thread/std::async/detach/pthread_create outside "
       "util/thread_pool"},
      {"conc-static-local",
       "mutable function-local static in src/ without atomic/mutex nearby"},
      {"det-bench-clock",
       "wall clock (system_clock/gettimeofday/...) in bench/ code"},
      {"det-rand",
       "rand()/srand()/std::random_device outside src/util/"},
      {"det-time-seed", "RNG seed derived from a wall clock or counter"},
      {"det-unordered-iter",
       "unordered-container iteration in save/load or src/obs/ emission"},
      {"det-wall-clock",
       "clock read inside numeric code (tensor/nn/nas/rl/das/accel/arcade)"},
      {"hyg-pragma-once", "header does not start with #pragma once"},
      {"hyg-using-namespace", "using-namespace directive in a header"},
      {"ser-field-coverage",
       "data member of a save_state/load_state class missing from either "
       "body"},
      {"ser-layout-fingerprint",
       "src/ckpt/section_file.h changed without a kCkptFormatVersion bump"},
      {"ser-pair", "class declares save_state xor load_state"},
      {"ser-raw-io",
       "fwrite/fread/memcpy in src/ckpt/ or src/util/ outside util::sio"},
  };
}

// ------------------------------------------------- A3CK layout fingerprint --

std::uint64_t layout_fingerprint(const std::string& header_source) {
  const LexedFile lexed = lex(header_source);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const Token& t : lexed.tokens) {
    mix(static_cast<unsigned char>(t.kind));
    for (const char ch : t.text) mix(static_cast<unsigned char>(ch));
    mix(0);
  }
  return h;
}

int parse_format_version(const std::string& header_source) {
  const LexedFile lexed = lex(header_source);
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        toks[i].text != "kCkptFormatVersion") {
      continue;
    }
    for (std::size_t j = i + 1; j < std::min(toks.size(), i + 6); ++j) {
      if (toks[j].kind == TokKind::kNumber) {
        return std::stoi(toks[j].text);
      }
      if (toks[j].kind == TokKind::kPunct && toks[j].text == ";") break;
    }
  }
  return -1;
}

namespace {

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return s;
}

}  // namespace

std::string render_fingerprint_file(const std::string& header_source) {
  std::ostringstream out;
  out << "# A3CK container layout fingerprint. Regenerate after a\n"
         "# deliberate format change (kCkptFormatVersion bump) with:\n"
         "#   a3cs_lint --repo-root . --update-a3ck-fingerprint\n"
         "# See docs/STATIC_ANALYSIS.md (rule ser-layout-fingerprint).\n"
      << "version " << parse_format_version(header_source) << "\n"
      << "fingerprint " << to_hex(layout_fingerprint(header_source)) << "\n";
  return out.str();
}

std::vector<Finding> check_layout_fingerprint(
    const std::string& header_path, const std::string& header_source,
    const std::string& fingerprint_file_content) {
  std::vector<Finding> out;
  constexpr const char* kRule = "ser-layout-fingerprint";

  int recorded_version = -2;
  std::string recorded_fp;
  std::istringstream in(fingerprint_file_content);
  std::string key;
  while (in >> key) {
    if (key == "version") in >> recorded_version;
    else if (key == "fingerprint") in >> recorded_fp;
    else in.ignore(1 << 20, '\n');  // comment / unknown line
  }

  const int version = parse_format_version(header_source);
  const std::string fp = to_hex(layout_fingerprint(header_source));

  if (version < 0) {
    out.push_back({header_path, 1, kRule,
                   "kCkptFormatVersion literal not found — the A3CK format "
                   "version must be an integer constant in this header"});
    return out;
  }
  if (recorded_version == -2 || recorded_fp.empty()) {
    out.push_back({header_path, 1, kRule,
                   "missing or invalid tools/a3cs_lint/a3ck_layout.txt — "
                   "run a3cs_lint --update-a3ck-fingerprint"});
    return out;
  }
  if (fp == recorded_fp && version == recorded_version) return out;
  if (version == recorded_version) {
    out.push_back({header_path, 1, kRule,
                   "A3CK section layout changed but kCkptFormatVersion is "
                   "still " + std::to_string(version) +
                       " — bump the version, then run a3cs_lint "
                       "--update-a3ck-fingerprint"});
  } else {
    out.push_back({header_path, 1, kRule,
                   "kCkptFormatVersion is now " + std::to_string(version) +
                       " (recorded: " + std::to_string(recorded_version) +
                       ") — refresh the record with a3cs_lint "
                       "--update-a3ck-fingerprint"});
  }
  return out;
}

}  // namespace a3cs_lint
