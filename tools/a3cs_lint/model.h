// The a3cs-lint analysis model: everything the rule engine knows about one
// translation unit, computed in a single lex + scope walk per file.
//
// PR 5's rules each re-derived what they needed from the raw token stream;
// the cross-TU rule families (arch-layering, conc-lock-order,
// ser-field-coverage) need an *indexed* view of the whole tree — include
// edges, class field declarations, mutex members, lock-acquisition order —
// so the walk now materializes a FileModel per TU. Per-file rules keep
// reading the ScopeInfo they always did; the graph phase (graph.h) joins
// the FileModels into repo-wide structures.
//
// Building a FileModel is pure and file-local (no filesystem, no globals),
// which is what lets the driver lex all TUs in parallel on util::ThreadPool
// with a deterministic, file-ordered report.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace a3cs_lint {

// --------------------------------------------------------------- scopes ----

// Per-token structural context, computed in one pass over the token stream.
// Keeps the rule bodies to honest token matching instead of each re-deriving
// brace structure.
struct ScopeInfo {
  // Token i sits at namespace/file scope (not inside class/function/enum).
  std::vector<bool> at_ns_scope;
  // Token i sits inside a function or plain block body.
  std::vector<bool> in_function;
  // Token i sits inside the body of a serialization function
  // (save_state/load_state/save_params/load_params/encode/serialize).
  std::vector<bool> in_ser_fn;
  // Token i is a direct class member position (innermost scope is a class).
  std::vector<bool> at_class_scope;

  struct ClassSpan {
    std::string name;
    int line = 0;
    bool has_save = false;
    bool has_load = false;
  };
  std::vector<ClassSpan> classes;
};

ScopeInfo walk_scopes(const std::vector<Token>& toks);

// ---------------------------------------------------------------- model ----

// One data-member declaration at class scope. `type_idents` holds every
// identifier of the declaration's type portion in order (e.g.
// `std::vector<nas::GumbelCategorical> phis_;` -> {std, vector, nas,
// GumbelCategorical}), which is how ser-field-coverage resolves member types
// to model classes without a real type system.
struct FieldDecl {
  std::string name;
  int line = 0;
  std::vector<std::string> type_idents;
  bool is_static = false;
  bool is_const = false;      // const or constexpr
  bool is_reference = false;  // reference members rebind, never serialize
};

// One class/struct/union definition (not a forward declaration).
struct ClassModel {
  std::string name;
  int line = 0;
  bool has_save = false;  // declares save_state at class scope
  bool has_load = false;  // declares load_state at class scope
  bool has_methods = false;  // any member function declared/defined
  std::vector<FieldDecl> fields;
};

// A mutex expression as written at a lock-acquisition site, reduced to its
// base identifier chain: `shards_[i]->mu` -> {shards_, mu}; a call
// expression `global_pool_mu()` -> {global_pool_mu} with is_call set.
// Canonicalization to a repo-wide lock name needs the cross-TU field index
// and happens in the graph phase (lock_order.cc).
struct MutexRef {
  std::vector<std::string> chain;
  bool is_call = false;
};

// Lock order observed inside one function: `from` was held when `to` was
// acquired. `line` is the acquisition line of `to`.
struct RawLockEdge {
  MutexRef from;
  MutexRef to;
  int line = 0;
};

// One function body's concurrency-relevant facts.
struct FunctionModel {
  std::string name;        // unqualified
  std::string class_name;  // enclosing class or out-of-line qualifier; ""
  int line = 0;
  std::vector<RawLockEdge> lock_edges;
  // A raw fork()/vfork() call issued while `first` was held (line = call).
  std::vector<std::pair<MutexRef, int>> fork_while_locked;
};

// A quoted #include directive ("module/file.h" style).
struct IncludeEdge {
  std::string target;
  int line = 0;
};

// The identifier set of one save_state/load_state body, keyed by the class
// it belongs to (inline definition or out-of-line `Class::save_state`).
struct SerBody {
  std::string class_name;
  bool is_save = false;  // save_state vs load_state
  int line = 0;
  std::set<std::string> idents;
};

struct FileModel {
  std::string path;    // repo-relative, forward slashes
  std::string module;  // "tensor" for src/tensor/...; "" outside src/
  LexedFile lex;
  ScopeInfo scopes;
  std::vector<IncludeEdge> includes;
  std::vector<ClassModel> classes;
  std::vector<FunctionModel> functions;
  std::vector<SerBody> ser_bodies;
};

// Lexes `source` and extracts the full model as if the file lived at the
// repo-relative `path`. Pure; safe to call concurrently from pool workers.
FileModel build_file_model(const std::string& path, const std::string& source);

// True when a finding of `rule` at `line` is silenced by an inline
// `// A3CS_LINT(rule)` marker recorded in `lex`.
bool is_suppressed(const LexedFile& lex, int line, const std::string& rule);

}  // namespace a3cs_lint
