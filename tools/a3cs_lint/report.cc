#include "report.h"

#include <string>

namespace a3cs_lint {
namespace {

void append_escaped(const std::string& s, std::string* out) {
  for (const char ch : s) {
    const unsigned char u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (u < 0x20) {
          static const char* hex = "0123456789abcdef";
          *out += "\\u00";
          *out += hex[u >> 4];
          *out += hex[u & 0xF];
        } else {
          *out += ch;
        }
    }
  }
}

// Minimal cursor over the exact byte shape render_json produces.
struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  bool literal(const char* s) {
    const std::size_t len = std::char_traits<char>::length(s);
    if (text.compare(pos, len, s) != 0) return false;
    pos += len;
    return true;
  }
  bool string(std::string* out) {
    if (!literal("\"")) return false;
    out->clear();
    while (pos < text.size()) {
      const char ch = text[pos++];
      if (ch == '"') return true;
      if (ch != '\\') {
        *out += ch;
        continue;
      }
      if (pos >= text.size()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'u': {
          if (pos + 4 > text.size()) return false;
          int code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else return false;
          }
          if (code > 0xFF) return false;  // we only ever emit control chars
          *out += static_cast<char>(code);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }
  bool number(long* out) {
    std::size_t end = pos;
    while (end < text.size() && text[end] >= '0' && text[end] <= '9') ++end;
    if (end == pos) return false;
    *out = std::stol(text.substr(pos, end - pos));
    pos = end;
    return true;
  }
};

}  // namespace

std::string render_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned) {
  std::string out = "{\"schema\":\"";
  out += kJsonSchema;
  out += "\",\"files\":";
  out += std::to_string(files_scanned);
  out += ",\"findings\":[";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"path\":\"";
    append_escaped(f.path, &out);
    out += "\",\"line\":";
    out += std::to_string(f.line);
    out += ",\"rule\":\"";
    append_escaped(f.rule, &out);
    out += "\",\"message\":\"";
    append_escaped(f.message, &out);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

bool parse_json(const std::string& text, std::vector<Finding>* findings,
                std::size_t* files_scanned) {
  findings->clear();
  Cursor c{text};
  std::string schema;
  long files = 0;
  if (!c.literal("{\"schema\":") || !c.string(&schema) ||
      schema != kJsonSchema || !c.literal(",\"files\":") ||
      !c.number(&files) || !c.literal(",\"findings\":[")) {
    return false;
  }
  if (files_scanned) *files_scanned = static_cast<std::size_t>(files);
  if (!c.literal("]")) {
    for (;;) {
      Finding f;
      long line = 0;
      if (!c.literal("{\"path\":") || !c.string(&f.path) ||
          !c.literal(",\"line\":") || !c.number(&line) ||
          !c.literal(",\"rule\":") || !c.string(&f.rule) ||
          !c.literal(",\"message\":") || !c.string(&f.message) ||
          !c.literal("}")) {
        return false;
      }
      f.line = static_cast<int>(line);
      findings->push_back(std::move(f));
      if (c.literal(",")) continue;
      if (c.literal("]")) break;
      return false;
    }
  }
  return c.literal("}\n") && c.pos == text.size();
}

}  // namespace a3cs_lint
