// arch-layering: the declared layer DAG (layers.txt) vs the real include
// graph, plus Tarjan-SCC module-cycle detection. Cycle detection runs over
// *every* src→src include edge — including pervasive and suppressed ones —
// so a blessed shortcut can never hide a genuine cycle.
#include <algorithm>
#include <functional>
#include <sstream>

#include "graph.h"

namespace a3cs_lint {
namespace {

constexpr const char* kRule = "arch-layering";
constexpr const char* kLayersPath = "tools/a3cs_lint/layers.txt";

// Module of a quoted include target ("nn/conv.h" -> "nn"); "" when the
// include is not module-shaped (local "lexer.h" style).
std::string target_module(const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos || slash == 0) return "";
  return target.substr(0, slash);
}

struct Edge {
  std::string from_module, to_module;
  std::string path;  // include site
  int line = 0;
};

// Tarjan strongly-connected components over a module graph. Deterministic:
// nodes are visited in sorted-name order and adjacency sets are ordered.
std::vector<std::vector<std::string>> sccs(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::map<std::string, int> index, low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> out;
  int next = 0;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = next++;
        stack.push_back(v);
        on_stack.insert(v);
        const auto it = adj.find(v);
        if (it != adj.end()) {
          for (const std::string& w : it->second) {
            if (!index.count(w)) {
              strongconnect(w);
              low[v] = std::min(low[v], low[w]);
            } else if (on_stack.count(w)) {
              low[v] = std::min(low[v], index[w]);
            }
          }
        }
        if (low[v] == index[v]) {
          std::vector<std::string> comp;
          for (;;) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            comp.push_back(w);
            if (w == v) break;
          }
          if (comp.size() > 1) {
            std::sort(comp.begin(), comp.end());
            out.push_back(std::move(comp));
          }
        }
      };
  for (const auto& [v, _] : adj) {
    if (!index.count(v)) strongconnect(v);
  }
  return out;
}

}  // namespace

LayerSpec parse_layers(const std::string& text) {
  LayerSpec spec;
  std::istringstream in(text);
  std::string line;
  int rank = 0;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;
    std::string module;
    if (kind == "layer") {
      bool any = false;
      while (fields >> module) {
        spec.rank.emplace(module, rank);
        any = true;
      }
      if (any) ++rank;
    } else if (kind == "pervasive") {
      while (fields >> module) spec.pervasive.insert(module);
    } else {
      return spec;  // unknown directive: invalid
    }
  }
  spec.valid = !spec.rank.empty();
  return spec;
}

std::vector<Finding> check_layering(const std::vector<FileModel>& files,
                                    const std::string& layers_text) {
  std::vector<Finding> out;
  const LayerSpec spec = parse_layers(layers_text);
  if (!spec.valid) {
    out.push_back({kLayersPath, 1, kRule,
                   "missing or unparseable layers.txt — the layer DAG must "
                   "be declared (see docs/STATIC_ANALYSIS.md)"});
    return out;
  }

  // Modules that actually exist as src/ directories in this tree.
  std::set<std::string> real_modules;
  for (const FileModel& f : files) {
    if (!f.module.empty()) real_modules.insert(f.module);
  }

  std::vector<Edge> edges;
  for (const FileModel& f : files) {
    if (f.module.empty()) continue;  // layering only constrains src/
    for (const IncludeEdge& inc : f.includes) {
      const std::string to = target_module(inc.target);
      if (to.empty() || to == f.module || !real_modules.count(to)) continue;
      edges.push_back({f.module, to, f.path, inc.line});
    }
  }

  for (const Edge& e : edges) {
    const auto from_it = spec.rank.find(e.from_module);
    const auto to_it = spec.rank.find(e.to_module);
    if (from_it == spec.rank.end()) {
      out.push_back({e.path, e.line, kRule,
                     "module '" + e.from_module +
                         "' is not declared in layers.txt — add it to a "
                         "layer before it grows includes"});
      continue;
    }
    if (spec.pervasive.count(e.to_module)) continue;
    if (to_it == spec.rank.end()) {
      out.push_back({e.path, e.line, kRule,
                     "include of undeclared module '" + e.to_module +
                         "' — add it to a layer in layers.txt"});
      continue;
    }
    if (to_it->second > from_it->second) {
      out.push_back({e.path, e.line, kRule,
                     "upward include: " + e.from_module + " (layer " +
                         std::to_string(from_it->second) + ") -> " +
                         e.to_module + " (layer " +
                         std::to_string(to_it->second) +
                         ") violates the declared DAG in layers.txt"});
    }
  }

  // Cycle detection over the full module graph, pervasive edges included.
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::pair<std::string, std::string>, std::pair<std::string, int>>
      site;  // representative include site per module edge
  for (const Edge& e : edges) {
    adj[e.from_module].insert(e.to_module);
    adj.emplace(e.to_module, std::set<std::string>{});
    auto key = std::make_pair(e.from_module, e.to_module);
    auto it = site.find(key);
    if (it == site.end() ||
        std::tie(e.path, e.line) < std::tie(it->second.first,
                                            it->second.second)) {
      site[key] = {e.path, e.line};
    }
  }
  for (const std::vector<std::string>& comp : sccs(adj)) {
    std::string cycle;
    for (const std::string& m : comp) {
      if (!cycle.empty()) cycle += " <-> ";
      cycle += m;
    }
    // Anchor at the lexicographically-first include site inside the cycle.
    std::pair<std::string, int> anchor{"", 0};
    const std::set<std::string> members(comp.begin(), comp.end());
    for (const auto& [key, where] : site) {
      if (!members.count(key.first) || !members.count(key.second)) continue;
      if (anchor.first.empty() || where < anchor) anchor = where;
    }
    out.push_back({anchor.first.empty() ? kLayersPath : anchor.first,
                   anchor.first.empty() ? 1 : anchor.second, kRule,
                   "module cycle: " + cycle +
                       " — break the cycle with an interface module or "
                       "dependency inversion"});
  }
  return out;
}

}  // namespace a3cs_lint
