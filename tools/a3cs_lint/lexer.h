// Lightweight C++ lexer for the a3cs-lint rule engine.
//
// The lexer's job is to make token-pattern rules trustworthy: comments and
// string/char literals are stripped into placeholder tokens so a banned
// identifier inside a log message or a doc comment can never fire a rule,
// and `// A3CS_LINT(rule-id)` suppression comments are collected as they go
// by. It is not a preprocessor: macros are not expanded and #include bodies
// are not followed — rules see each file exactly as written.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace a3cs_lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (lexed loosely, incl. 0x.., 1e-3, digit')
  kString,   // string literal (text = decoded-ish body, quotes stripped)
  kChar,     // character literal
  kPunct,    // one punctuation char, except "::" which is one token
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<std::string> lines;  // raw source, for adjacency heuristics
  // line -> rule-ids silenced there by `// A3CS_LINT(id[, id...])`. A
  // suppression comment on its own line also covers the following line.
  std::map<int, std::set<std::string>> suppressions;
};

// Never fails: unterminated literals/comments lex to end-of-file.
LexedFile lex(const std::string& source);

}  // namespace a3cs_lint
