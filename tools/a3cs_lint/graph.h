// The cross-TU graph phase of a3cs-lint: rule families that only make sense
// over the whole tree at once, joined from the per-file FileModels.
//
//   arch-layering       the real `src/` include graph vs the declared layer
//                       DAG in tools/a3cs_lint/layers.txt, plus module-cycle
//                       detection (Tarjan SCC) over the full graph
//   conc-lock-order     per-function lock-acquisition orders canonicalized
//                       against the repo-wide mutex-field index and merged
//                       into one lock graph; cycles are potential deadlocks,
//                       and fork() under a held lock in src/fleet/ is flagged
//   ser-field-coverage  every data member of a save_state/load_state class
//                       (and of plain aggregates it stores) must appear in
//                       both bodies
//
// All three anchor findings at real source lines so the ordinary inline
// `// A3CS_LINT(rule)` suppressions and baseline entries apply unchanged.
#pragma once

#include <string>
#include <vector>

#include "model.h"
#include "rules.h"

namespace a3cs_lint {

// --- layers.txt ------------------------------------------------------------
//
// Line-oriented, '#' comments:
//   layer <module> [<module>...]   one DAG rank, listed bottom-up; a module
//                                  may include same-rank or lower-rank ones
//   pervasive <module>...          cross-cutting modules includable from
//                                  anywhere (util, obs)
struct LayerSpec {
  std::map<std::string, int> rank;  // module -> 0-based rank (bottom = 0)
  std::set<std::string> pervasive;
  bool valid = false;
};

LayerSpec parse_layers(const std::string& text);

// Upward includes + module cycles. `layers_text` is the raw content of
// layers.txt ("" when the file is missing — itself a finding).
std::vector<Finding> check_layering(const std::vector<FileModel>& files,
                                    const std::string& layers_text);

// Lock-graph cycles and fork()-under-lock.
std::vector<Finding> check_lock_order(const std::vector<FileModel>& files);

// Unserialized data members.
std::vector<Finding> check_ser_coverage(const std::vector<FileModel>& files);

// Runs all three families, drops inline-suppressed findings (each finding's
// path is looked up in `files` for its suppression table), and returns the
// rest sorted by (path, line, rule). Baseline filtering stays in the driver.
std::vector<Finding> lint_tree(const std::vector<FileModel>& files,
                               const std::string& layers_text);

}  // namespace a3cs_lint
