// bench_report: diffs a fresh BENCH_*.json run against a committed baseline
// and gates on regressions (docs/BENCHMARKING.md).
//
//   bench_report --baseline BENCH_KERNELS.json --current fresh.json
//   bench_report --check --baseline ... --current ... [--max-regress 25]
//   bench_report --chrome-check trace.json
//
// Modes:
//   default        print the diff table (ok/improved/REGRESSED/new/MISSING)
//   --check        same, but exit 1 when any row REGRESSED (or a baseline
//                  row went MISSING — a silently dropped bench must not pass)
//   --chrome-check validate a Chrome trace_events file: parses the JSON,
//                  checks otherData metadata and that B/E events are balanced
//                  per (pid, tid); exit 1 on malformed input
//
// Exit codes: 0 ok, 1 regression/malformed, 2 usage error, 3 missing or
// unreadable baseline/current file.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl.h"
#include "obs/perf/bench_json.h"
#include "util/table.h"

using namespace a3cs;
using obs::perf::BenchDoc;
using obs::perf::DiffRow;

namespace {

int usage() {
  std::cerr
      << "usage: bench_report [--check] --baseline FILE --current FILE\n"
         "                    [--max-regress PCT]\n"
         "       bench_report --chrome-check TRACE.json\n";
  return 2;
}

// Validates a Chrome trace_events document: required top-level keys, and
// balanced B/E duration events per (pid, tid) with matching names.
int chrome_check(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::cerr << "bench_report: cannot open " << path << "\n";
    return 3;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  obs::JsonValue root;
  try {
    root = obs::JsonValue::parse(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "bench_report: " << path << " is not valid JSON: " << e.what()
              << "\n";
    return 1;
  }
  if (!root.is_object() || root.find("traceEvents") == nullptr) {
    std::cerr << "bench_report: " << path << " has no traceEvents array\n";
    return 1;
  }
  const obs::JsonValue* meta = root.find("otherData");
  if (meta == nullptr || !meta->is_object() ||
      meta->find("git_sha") == nullptr) {
    std::cerr << "bench_report: " << path << " has no otherData metadata\n";
    return 1;
  }
  const auto& events = root.find("traceEvents")->as_array();
  // Per-(pid,tid) stack of open scope names; E must match the innermost B.
  std::map<std::string, std::vector<std::string>> open;
  std::int64_t durations = 0;
  for (const obs::JsonValue& ev : events) {
    const std::string ph = ev.string_or("ph", "");
    if (ph != "B" && ph != "E") continue;
    const std::string lane =
        std::to_string(static_cast<int>(ev.number_or("pid", 0))) + "/" +
        std::to_string(static_cast<int>(ev.number_or("tid", 0)));
    const std::string name = ev.string_or("name", "");
    if (ph == "B") {
      open[lane].push_back(name);
      ++durations;
      continue;
    }
    auto& stack = open[lane];
    if (stack.empty()) {
      std::cerr << "bench_report: unbalanced E event \"" << name
                << "\" on lane " << lane << "\n";
      return 1;
    }
    if (stack.back() != name) {
      std::cerr << "bench_report: E event \"" << name
                << "\" does not match open scope \"" << stack.back()
                << "\" on lane " << lane << "\n";
      return 1;
    }
    stack.pop_back();
  }
  for (const auto& [lane, stack] : open) {
    if (!stack.empty()) {
      std::cerr << "bench_report: " << stack.size()
                << " unclosed B event(s) on lane " << lane << " (innermost \""
                << stack.back() << "\")\n";
      return 1;
    }
  }
  std::cout << "bench_report: " << path << " ok (" << events.size()
            << " events, " << durations << " scopes, balanced)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string chrome_path;
  double max_regress_pct = 25.0;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--max-regress" && i + 1 < argc) {
      try {
        max_regress_pct = std::stod(argv[++i]);
      } catch (const std::exception&) {
        return usage();
      }
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--chrome-check" && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      return usage();
    }
  }

  if (!chrome_path.empty()) return chrome_check(chrome_path);
  if (baseline_path.empty() || current_path.empty()) return usage();

  BenchDoc baseline;
  BenchDoc current;
  try {
    baseline = obs::perf::parse_bench_file(baseline_path);
  } catch (const std::exception& e) {
    std::cerr << "bench_report: baseline: " << e.what() << "\n";
    return 3;
  }
  try {
    current = obs::perf::parse_bench_file(current_path);
  } catch (const std::exception& e) {
    std::cerr << "bench_report: current: " << e.what() << "\n";
    return 3;
  }

  if (baseline.suite != current.suite) {
    std::cerr << "bench_report: suite mismatch (baseline \"" << baseline.suite
              << "\" vs current \"" << current.suite << "\")\n";
    return 2;
  }

  const std::vector<DiffRow> rows =
      obs::perf::diff_baselines(baseline, current, max_regress_pct);
  std::cout << "suite " << current.suite << ": baseline "
            << baseline.meta.git_sha << " (" << baseline.meta.host
            << ") vs current " << current.meta.git_sha << " ("
            << current.meta.host << "), threshold " << max_regress_pct
            << "%\n";
  util::TextTable table({"bench/config/threads", "base ms", "cur ms",
                         "delta %", "base tp", "cur tp", "unit", "verdict"});
  for (const DiffRow& row : rows) {
    const bool has_tp =
        row.baseline_throughput > 0.0 || row.current_throughput > 0.0;
    table.add_row(
        {row.key, util::TextTable::num(row.baseline_median_ms, 3),
         util::TextTable::num(row.current_median_ms, 3),
         util::TextTable::num(row.delta_pct, 1),
         row.baseline_throughput > 0.0
             ? util::TextTable::num(row.baseline_throughput, 1)
             : "",
         row.current_throughput > 0.0
             ? util::TextTable::num(row.current_throughput, 1)
             : "",
         has_tp ? row.throughput_unit : "",
         obs::perf::verdict_name(row.verdict)});
  }
  table.print(std::cout);

  if (check && obs::perf::diff_has_failure(rows)) {
    std::cerr << "bench_report: FAIL — regression above " << max_regress_pct
              << "% (or missing baseline row)\n";
    return 1;
  }
  return 0;
}
