#!/usr/bin/env bash
# Opt-in perf regression gate (ctest `perf_gate`, docs/BENCHMARKING.md).
#
# Re-runs the three registry bench suites at full scale and diffs each
# against its committed BENCH_*.json baseline with bench_report --check.
# Skipped (exit 77) unless A3CS_PERF_GATE=1: full-scale benches take minutes
# and perf numbers are only meaningful on a quiet, comparable host.
#
# usage: perf_gate.sh BENCH_REPORT_BIN REPO_ROOT KERNELS_BIN PREDICTOR_BIN \
#                     COSEARCH_BIN
set -u

if [ "${A3CS_PERF_GATE:-0}" != "1" ]; then
  echo "perf_gate: skipped (set A3CS_PERF_GATE=1 to enable)"
  exit 77
fi

if [ "$#" -ne 5 ]; then
  echo "perf_gate: expected 5 arguments, got $#" >&2
  exit 2
fi

bench_report="$1"
repo_root="$2"
kernels_bin="$3"
predictor_bin="$4"
cosearch_bin="$5"

# Looser than bench_report's 25% default: the gate re-runs whole suites on
# whatever host ctest happens to be on, and oversubscribed thread-sweep
# cases on small/busy VMs show up to ~80% run-to-run variance (the result's
# `steady` flag records it). 100% still catches algorithmic blowups; tighten
# via env on a quiet, pinned box.
max_regress="${A3CS_PERF_GATE_MAX_REGRESS:-100}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

status=0
run_suite() {
  local name="$1" bin="$2" baseline="$repo_root/BENCH_$3.json"
  if [ ! -f "$baseline" ]; then
    echo "perf_gate: missing baseline $baseline" >&2
    status=1
    return
  fi
  echo "perf_gate: running $name suite..."
  if ! "$bin" --json "$workdir/$3.json" > "$workdir/$3.log" 2>&1; then
    echo "perf_gate: $name bench failed:" >&2
    tail -20 "$workdir/$3.log" >&2
    status=1
    return
  fi
  if ! "$bench_report" --check --max-regress "$max_regress" \
        --baseline "$baseline" --current "$workdir/$3.json"; then
    status=1
  fi
}

run_suite kernels "$kernels_bin" KERNELS
run_suite predictor "$predictor_bin" PREDICTOR
run_suite cosearch "$cosearch_bin" COSEARCH

exit "$status"
